#include "persist/persistent_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "relation/row_hash.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace fs = std::filesystem;

namespace ajd {

namespace persist_internal {

namespace {
std::atomic<uint64_t> g_torn_write_bytes{0};
std::atomic<bool> g_crash_simulation{false};
}  // namespace

void SetTornWriteBytes(uint64_t bytes) {
  g_torn_write_bytes.store(bytes, std::memory_order_relaxed);
}

void SetCrashSimulation(bool on) {
  g_crash_simulation.store(on, std::memory_order_relaxed);
}

}  // namespace persist_internal

namespace {

constexpr char kManifestMagic[8] = {'A', 'J', 'D', 'C', 'A', 'C', 'H', '1'};
constexpr uint32_t kBlobMagic = 0x424A4441u;  // "AJDB" little-endian
constexpr uint32_t kBlobVersion = 1;
// A manifest record's payload can't plausibly exceed this (the largest is
// a put: fixed fields + a <= 64-entry chain); larger lengths mean a torn
// or foreign frame.
constexpr uint32_t kMaxRecordLen = 4096;

enum RecordKind : uint8_t {
  kRecordPut = 1,
  kRecordErase = 2,
  kRecordQuarantine = 3,
};

bool CrashSim() {
  return persist_internal::g_crash_simulation.load(std::memory_order_relaxed);
}

/// Bytes a firing torn-write failpoint actually lets through for a buffer
/// of `n` (the knob maps onto [0, n] so any randomized value is a valid
/// kill offset).
size_t TornLimit(size_t n) {
  const uint64_t k =
      persist_internal::g_torn_write_bytes.load(std::memory_order_relaxed);
  return static_cast<size_t>(k % (static_cast<uint64_t>(n) + 1));
}

// --- little-endian encoding helpers ---------------------------------------

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

bool GetBytes(const char** p, const char* end, void* out, size_t n) {
  if (static_cast<size_t>(end - *p) < n) return false;
  std::memcpy(out, *p, n);
  *p += n;
  return true;
}

bool GetU8(const char** p, const char* end, uint8_t* v) {
  return GetBytes(p, end, v, 1);
}
bool GetU32(const char** p, const char* end, uint32_t* v) {
  return GetBytes(p, end, v, 4);
}
bool GetU64(const char** p, const char* end, uint64_t* v) {
  return GetBytes(p, end, v, 8);
}
bool GetF64(const char** p, const char* end, double* v) {
  uint64_t bits;
  if (!GetU64(p, end, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

/// Writes up to `n` bytes of `data` to `fd`, retrying short writes; returns
/// bytes actually written (< n only on a real I/O error).
size_t WriteFully(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      break;
    }
    done += static_cast<size_t>(w);
  }
  return done;
}

void SyncDirBestEffort(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Serialized payload of a put record (no frame).
std::string EncodePut(const PersistedEntryMeta& e) {
  std::string out;
  out.push_back(static_cast<char>(kRecordPut));
  PutU64(&out, e.fingerprint);
  PutU64(&out, e.attrs.mask());
  PutU64(&out, e.rows);
  uint8_t flags = 0;
  if (e.has_entropy) flags |= 1;
  if (e.has_payload) flags |= 2;
  out.push_back(static_cast<char>(flags));
  PutF64(&out, e.entropy);
  PutU32(&out, e.last_col_card);
  out.push_back(static_cast<char>(e.chain.size()));
  for (uint32_t a : e.chain) out.push_back(static_cast<char>(a));
  if (e.has_payload) PutU64(&out, e.blob_id);
  return out;
}

std::string EncodeErase(uint64_t fingerprint, uint64_t mask, uint64_t rows) {
  std::string out;
  out.push_back(static_cast<char>(kRecordErase));
  PutU64(&out, fingerprint);
  PutU64(&out, mask);
  PutU64(&out, rows);
  return out;
}

std::string EncodeQuarantine(uint64_t blob_id) {
  std::string out;
  out.push_back(static_cast<char>(kRecordQuarantine));
  PutU64(&out, blob_id);
  return out;
}

/// Frames a record payload: [u32 len][u32 crc32c(payload)][payload].
std::string FrameRecord(const std::string& payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32c(payload.data(), payload.size()));
  out += payload;
  return out;
}

bool DecodePut(const char* p, const char* end, PersistedEntryMeta* e) {
  uint64_t mask = 0;
  uint8_t flags = 0, chain_len = 0;
  if (!GetU64(&p, end, &e->fingerprint) || !GetU64(&p, end, &mask) ||
      !GetU64(&p, end, &e->rows) || !GetU8(&p, end, &flags) ||
      !GetF64(&p, end, &e->entropy) || !GetU32(&p, end, &e->last_col_card) ||
      !GetU8(&p, end, &chain_len)) {
    return false;
  }
  e->attrs = AttrSet::FromMask(mask);
  e->has_entropy = (flags & 1) != 0;
  e->has_payload = (flags & 2) != 0;
  e->chain.resize(chain_len);
  for (uint8_t i = 0; i < chain_len; ++i) {
    uint8_t a;
    if (!GetU8(&p, end, &a) || a >= kMaxAttrs) return false;
    e->chain[i] = a;
  }
  if (e->has_payload && !GetU64(&p, end, &e->blob_id)) return false;
  return p == end;
}

}  // namespace

size_t PersistentCacheStore::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(
      Mix64(k.fingerprint ^ Mix64(k.mask ^ Mix64(k.rows))));
}

PersistentCacheStore::PersistentCacheStore(std::string dir,
                                           PersistOptions options)
    : dir_(std::move(dir)),
      manifest_path_(dir_ + "/MANIFEST"),
      blobs_dir_(dir_ + "/blobs"),
      options_(options) {}

PersistentCacheStore::~PersistentCacheStore() {
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
}

std::string PersistentCacheStore::BlobPath(uint64_t blob_id) const {
  return blobs_dir_ + "/b" + std::to_string(blob_id) + ".blob";
}

Status PersistentCacheStore::OpenManifestLocked() {
  if (manifest_fd_ >= 0) {
    ::close(manifest_fd_);
    manifest_fd_ = -1;
  }
  manifest_fd_ = ::open(manifest_path_.c_str(), O_WRONLY | O_APPEND, 0644);
  if (manifest_fd_ < 0) {
    return Status::IoError("cannot open manifest for appending: " +
                           manifest_path_);
  }
  return Status::OK();
}

Result<std::shared_ptr<PersistentCacheStore>> PersistentCacheStore::Open(
    const std::string& dir, const PersistOptions& options) {
  std::shared_ptr<PersistentCacheStore> store(
      new PersistentCacheStore(dir, options));
  std::lock_guard<std::mutex> lock(store->mu_);

  std::error_code ec;
  fs::create_directories(store->blobs_dir_, ec);
  if (ec) {
    return Status::IoError("cannot create cache directory: " + dir + ": " +
                           ec.message());
  }

  // A crashed compaction's tmp journal is never authoritative.
  if (fs::remove(store->manifest_path_ + ".tmp", ec)) {
    ++store->stats_.tmp_files_removed;
  }

  // --- replay the journal --------------------------------------------------
  std::string bytes;
  {
    std::ifstream in(store->manifest_path_, std::ios::binary);
    if (in) {
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
  }
  size_t good_end = sizeof(kManifestMagic);
  if (bytes.size() < sizeof(kManifestMagic) ||
      std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) !=
          0) {
    // Missing, empty, or torn-inside-the-magic journal: start fresh. (A
    // non-empty unreadable prefix counts as a torn tail of size zero-live.)
    if (!bytes.empty()) {
      ++store->stats_.torn_tail_events;
      store->stats_.torn_tail_bytes += bytes.size();
    }
    std::ofstream out(store->manifest_path_,
                      std::ios::binary | std::ios::trunc);
    out.write(kManifestMagic, sizeof(kManifestMagic));
    if (!out) {
      return Status::IoError("cannot initialize manifest: " +
                             store->manifest_path_);
    }
    out.close();
    bytes.assign(kManifestMagic, sizeof(kManifestMagic));
  } else {
    const char* base = bytes.data();
    size_t pos = sizeof(kManifestMagic);
    std::unordered_map<uint64_t, bool> quarantined_ids;
    while (pos + 8 <= bytes.size()) {
      uint32_t len, crc;
      std::memcpy(&len, base + pos, 4);
      std::memcpy(&crc, base + pos + 4, 4);
      if (len == 0 || len > kMaxRecordLen || pos + 8 + len > bytes.size()) {
        break;  // torn or foreign frame: the valid prefix ends here
      }
      const char* payload = base + pos + 8;
      if (Crc32c(payload, len) != crc) break;
      const uint8_t kind = static_cast<uint8_t>(payload[0]);
      const char* p = payload + 1;
      const char* end = payload + len;
      if (kind == kRecordPut) {
        PersistedEntryMeta e;
        if (!DecodePut(p, end, &e)) break;
        const Key key{e.fingerprint, e.attrs.mask(), e.rows};
        auto it = store->index_.find(key);
        if (it != store->index_.end()) ++store->dead_records_;
        store->index_[key] = std::move(e);
      } else if (kind == kRecordErase) {
        uint64_t fp, mask, rows;
        if (!GetU64(&p, end, &fp) || !GetU64(&p, end, &mask) ||
            !GetU64(&p, end, &rows) || p != end) {
          break;
        }
        store->index_.erase(Key{fp, mask, rows});
        ++store->dead_records_;
      } else if (kind == kRecordQuarantine) {
        uint64_t blob_id;
        if (!GetU64(&p, end, &blob_id) || p != end) break;
        quarantined_ids[blob_id] = true;
        ++store->dead_records_;
      } else {
        break;  // unknown kind: treat like a torn frame
      }
      pos += 8 + len;
    }
    good_end = pos;
    if (good_end < bytes.size()) {
      ++store->stats_.torn_tail_events;
      store->stats_.torn_tail_bytes += bytes.size() - good_end;
      fs::resize_file(store->manifest_path_, good_end, ec);
      if (ec) {
        return Status::IoError("cannot truncate torn manifest tail: " +
                               ec.message());
      }
    }
    // A quarantine record outlives the entries it condemned only when it
    // raced a replayed put; drop any entry still pointing at a quarantined
    // blob.
    if (!quarantined_ids.empty()) {
      for (auto it = store->index_.begin(); it != store->index_.end();) {
        if (it->second.has_payload &&
            quarantined_ids.count(it->second.blob_id) != 0) {
          it = store->index_.erase(it);
          ++store->dead_records_;
        } else {
          ++it;
        }
      }
    }
  }
  store->manifest_size_ = good_end;

  // --- blob directory recovery --------------------------------------------
  // Referenced blob ids; entries whose blob vanished are dropped up front
  // (the alternative — failing at first load — would hide the loss from
  // the recovery accounting).
  std::unordered_map<uint64_t, bool> referenced;
  for (const auto& kv : store->index_) {
    if (kv.second.has_payload) referenced[kv.second.blob_id] = true;
  }
  uint64_t max_id = 0;
  std::vector<fs::path> to_remove;
  std::unordered_map<uint64_t, bool> present;
  for (const auto& ent : fs::directory_iterator(store->blobs_dir_, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      to_remove.push_back(ent.path());  // crashed blob write
      ++store->stats_.tmp_files_removed;
      continue;
    }
    // b<id>.blob and b<id>.blob.quarantined both pin the id space.
    if (name.size() < 2 || name[0] != 'b') continue;
    uint64_t id = 0;
    size_t i = 1;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
      id = id * 10 + static_cast<uint64_t>(name[i] - '0');
      ++i;
    }
    if (i == 1) continue;
    max_id = std::max(max_id, id);
    if (name.compare(i, std::string::npos, ".blob") == 0) {
      present[id] = true;
      if (referenced.count(id) == 0) {
        to_remove.push_back(ent.path());  // orphan: blob landed, record lost
        ++store->stats_.orphan_blobs_removed;
      }
    }
  }
  for (const fs::path& p : to_remove) fs::remove(p, ec);
  for (auto it = store->index_.begin(); it != store->index_.end();) {
    if (it->second.has_payload && present.count(it->second.blob_id) == 0) {
      it = store->index_.erase(it);
      ++store->dead_records_;
      ++store->stats_.missing_blob_entries_dropped;
    } else {
      ++it;
    }
  }
  for (const auto& kv : referenced) max_id = std::max(max_id, kv.first);
  store->next_blob_id_ = max_id + 1;

  Status s = store->OpenManifestLocked();
  if (!s.ok()) return s;
  store->stats_.entries = store->index_.size();
  return store;
}

Status PersistentCacheStore::AppendRecordLocked(const std::string& payload) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "persistent store is read-only after an unrecovered append failure; "
        "Compact() to rebuild the journal");
  }
  const std::string frame = FrameRecord(payload);
  size_t limit = frame.size();
  bool injected = false;
  if (AJD_FAILPOINT(failpoints::kPersistManifestAppend)) {
    injected = true;
    limit = TornLimit(frame.size());
  }
  const size_t wrote = WriteFully(manifest_fd_, frame.data(), limit);
  if (injected || wrote < frame.size()) {
    if (injected && CrashSim()) {
      // Simulated kill -9 mid-append: leave the torn bytes on disk. The
      // in-process object can no longer append safely (a later record
      // would sit after garbage and be dropped by the next open's tail
      // truncation), so it goes read-only; the soak reopens the directory.
      read_only_ = true;
      return Status::IoError("injected crash during manifest append");
    }
    // In-process failure: truncate the torn bytes back so the journal ends
    // at the last complete record and the store stays writable.
    if (::ftruncate(manifest_fd_, static_cast<off_t>(manifest_size_)) != 0) {
      read_only_ = true;
    }
    return Status::IoError(injected ? "injected manifest append failure"
                                    : "short write appending manifest record");
  }
  manifest_size_ += frame.size();
  if (options_.fsync_writes) ::fsync(manifest_fd_);
  return Status::OK();
}

Status PersistentCacheStore::WriteBlobLocked(uint64_t blob_id,
                                             const PartitionPayload& payload) {
  std::string buf;
  {
    std::string body;
    body.reserve(16 + 4 * (payload.rows.size() + payload.offsets.size()));
    PutU64(&body, payload.rows.size());
    PutU64(&body, payload.offsets.size());
    body.append(reinterpret_cast<const char*>(payload.rows.data()),
                payload.rows.size() * 4);
    body.append(reinterpret_cast<const char*>(payload.offsets.data()),
                payload.offsets.size() * 4);
    PutU32(&buf, kBlobMagic);
    PutU32(&buf, kBlobVersion);
    PutU64(&buf, body.size());
    PutU32(&buf, Crc32c(body.data(), body.size()));
    buf += body;
  }
  const std::string path = BlobPath(blob_id);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError("cannot create blob tmp file: " + tmp);
  size_t limit = buf.size();
  bool injected = false;
  if (AJD_FAILPOINT(failpoints::kPersistBlobWrite)) {
    injected = true;
    limit = TornLimit(buf.size());
  }
  const size_t wrote = WriteFully(fd, buf.data(), limit);
  if (injected || wrote < buf.size()) {
    ::close(fd);
    if (!(injected && CrashSim())) {
      std::error_code ec;
      fs::remove(tmp, ec);
    }
    // Either way the blob never reached its final name, so the entry is
    // simply not persisted; a leftover tmp (simulated crash) is removed by
    // the next open.
    return Status::IoError(injected ? "injected blob write failure"
                                    : "short write creating blob " + tmp);
  }
  if (options_.fsync_writes) ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return Status::IoError("cannot rename blob into place: " + path);
  }
  if (options_.fsync_writes) SyncDirBestEffort(blobs_dir_);
  return Status::OK();
}

Status PersistentCacheStore::Put(const PersistedEntryMeta& meta,
                                 const PartitionPayload* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (meta.chain.size() > kMaxAttrs) {
    return Status::InvalidArgument("persist put: chain longer than 64");
  }
  const Key key{meta.fingerprint, meta.attrs.mask(), meta.rows};
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Identical-content dedupe: spill-on-evict and catch-up re-offer hot
    // entries every epoch; rewriting bytes already on disk would churn the
    // journal for nothing. "Carries at least as much" is enough — an
    // entropy-only put never downgrades a resident blob entry.
    const PersistedEntryMeta& have = it->second;
    const bool payload_covered = (payload == nullptr) || have.has_payload;
    const bool entropy_covered = !meta.has_entropy || have.has_entropy;
    if (payload_covered && entropy_covered && have.chain == meta.chain) {
      ++stats_.dedup_puts;
      return Status::OK();
    }
  }
  PersistedEntryMeta entry = meta;
  entry.has_payload = payload != nullptr;
  entry.blob_id = 0;
  if (payload != nullptr) {
    entry.blob_id = next_blob_id_++;
    Status s = WriteBlobLocked(entry.blob_id, *payload);
    if (!s.ok()) {
      ++stats_.put_failures;
      return s;
    }
  }
  Status s = AppendRecordLocked(EncodePut(entry));
  if (!s.ok()) {
    // The blob (if any) never got a manifest record: it is an orphan,
    // removed here in-process or by the next open after a simulated crash.
    if (payload != nullptr && !CrashSim()) {
      std::error_code ec;
      fs::remove(BlobPath(entry.blob_id), ec);
    }
    ++stats_.put_failures;
    return s;
  }
  if (it != index_.end()) {
    if (it->second.has_payload) {
      std::error_code ec;
      fs::remove(BlobPath(it->second.blob_id), ec);
    }
    ++dead_records_;
    it->second = std::move(entry);
  } else {
    index_.emplace(key, std::move(entry));
  }
  ++stats_.puts;
  stats_.entries = index_.size();
  return Status::OK();
}

bool PersistentCacheStore::LookupExact(uint64_t fingerprint, AttrSet attrs,
                                       uint64_t rows,
                                       PersistedEntryMeta* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = index_.find(Key{fingerprint, attrs.mask(), rows});
  if (it == index_.end()) return false;
  ++stats_.hits;
  if (out != nullptr) *out = it->second;
  return true;
}

std::vector<PersistedEntryMeta> PersistentCacheStore::AllEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PersistedEntryMeta> out;
  out.reserve(index_.size());
  for (const auto& kv : index_) out.push_back(kv.second);
  return out;
}

void PersistentCacheStore::QuarantineBlobLocked(const Key& key,
                                                const char* why) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  (void)why;
  const uint64_t blob_id = it->second.blob_id;
  const std::string path = BlobPath(blob_id);
  // Keep the bytes around for postmortems (tools/ajdcache scrub removes
  // them); if even the rename fails, fall back to unlinking.
  if (::rename(path.c_str(), (path + ".quarantined").c_str()) != 0) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  // Best-effort journal note: even if the append fails, the blob file is
  // out of the way and the index entry is gone for this process; the next
  // open then drops the entry as missing-blob instead.
  (void)AppendRecordLocked(EncodeQuarantine(blob_id));
  index_.erase(it);
  ++dead_records_;
  ++stats_.quarantined_blobs;
  stats_.entries = index_.size();
}

Result<PartitionPayload> PersistentCacheStore::LoadPayload(
    const PersistedEntryMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.payload_loads;
  const Key key{meta.fingerprint, meta.attrs.mask(), meta.rows};
  auto it = index_.find(key);
  if (it == index_.end() || !it->second.has_payload) {
    ++stats_.payload_load_failures;
    return Status::NotFound("no persisted payload for entry");
  }
  if (AJD_FAILPOINT(failpoints::kPersistBlobRead)) {
    ++stats_.payload_load_failures;
    QuarantineBlobLocked(key, "injected read fault");
    return Status::IoError("injected blob read failure (quarantined)");
  }
  // One sized read through the raw fd: a warm restart loads every blob in
  // the store back to back, and streaming the bytes through an ifstream
  // iterator costs more than the CRC pass itself.
  std::string bytes;
  {
    const int fd = ::open(BlobPath(it->second.blob_id).c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st;
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        bytes.resize(static_cast<size_t>(st.st_size));
        size_t got = 0;
        while (got < bytes.size()) {
          const ssize_t n =
              ::read(fd, &bytes[got], bytes.size() - got);
          if (n > 0) {
            got += static_cast<size_t>(n);
          } else if (n == 0 || errno != EINTR) {
            break;
          }
        }
        bytes.resize(got);
      }
      ::close(fd);
    }
  }
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  uint32_t magic = 0, version = 0, crc = 0;
  uint64_t body_len = 0;
  if (!GetU32(&p, end, &magic) || !GetU32(&p, end, &version) ||
      !GetU64(&p, end, &body_len) || !GetU32(&p, end, &crc) ||
      magic != kBlobMagic || version != kBlobVersion ||
      static_cast<uint64_t>(end - p) != body_len ||
      Crc32c(p, static_cast<size_t>(body_len)) != crc) {
    ++stats_.payload_load_failures;
    QuarantineBlobLocked(key, "blob failed verification");
    return Status::IoError("blob failed verification (quarantined)");
  }
  uint64_t n_rows = 0, n_offsets = 0;
  PartitionPayload payload;
  if (!GetU64(&p, end, &n_rows) || !GetU64(&p, end, &n_offsets) ||
      static_cast<uint64_t>(end - p) != 4 * (n_rows + n_offsets)) {
    ++stats_.payload_load_failures;
    QuarantineBlobLocked(key, "blob body malformed");
    return Status::IoError("blob body malformed (quarantined)");
  }
  payload.rows.resize(n_rows);
  payload.offsets.resize(n_offsets);
  std::memcpy(payload.rows.data(), p, n_rows * 4);
  std::memcpy(payload.offsets.data(), p + n_rows * 4, n_offsets * 4);
  return payload;
}

Status PersistentCacheStore::Erase(uint64_t fingerprint, AttrSet attrs,
                                   uint64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{fingerprint, attrs.mask(), rows};
  auto it = index_.find(key);
  if (it == index_.end()) return Status::OK();
  Status s =
      AppendRecordLocked(EncodeErase(fingerprint, attrs.mask(), rows));
  if (!s.ok()) return s;
  if (it->second.has_payload) {
    std::error_code ec;
    fs::remove(BlobPath(it->second.blob_id), ec);
  }
  index_.erase(it);
  dead_records_ += 2;  // the put it cancels plus the erase itself
  ++stats_.erases;
  stats_.entries = index_.size();
  return Status::OK();
}

Status PersistentCacheStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string tmp = manifest_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot create " + tmp);
    out.write(kManifestMagic, sizeof(kManifestMagic));
    for (const auto& kv : index_) {
      const std::string frame = FrameRecord(EncodePut(kv.second));
      out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    }
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return Status::IoError("short write building " + tmp);
    }
  }
  if (options_.fsync_writes) {
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }
  if (AJD_FAILPOINT(failpoints::kPersistCompactRename)) {
    // The window a real crash would hit: tmp complete and durable, rename
    // not issued. The OLD journal stays authoritative either way; without
    // crash-sim the tmp is tidied here, with it the next open removes it.
    if (!CrashSim()) {
      std::error_code ec;
      fs::remove(tmp, ec);
    }
    return Status::IoError("injected failure before compaction rename");
  }
  if (::rename(tmp.c_str(), manifest_path_.c_str()) != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return Status::IoError("cannot rename compacted manifest into place");
  }
  if (options_.fsync_writes) SyncDirBestEffort(dir_);
  // The rename invalidated the old append fd's file; reopen on the new
  // journal and recompute its size.
  Status s = OpenManifestLocked();
  if (!s.ok()) {
    read_only_ = true;
    return s;
  }
  std::error_code ec;
  manifest_size_ = static_cast<uint64_t>(fs::file_size(manifest_path_, ec));
  dead_records_ = 0;
  read_only_ = false;  // the journal was just rebuilt whole
  // Blobs no live entry references (erase-path leftovers, quarantine races)
  // are garbage now.
  std::unordered_map<uint64_t, bool> referenced;
  for (const auto& kv : index_) {
    if (kv.second.has_payload) referenced[kv.second.blob_id] = true;
  }
  for (const auto& ent : fs::directory_iterator(blobs_dir_, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.size() < 6 || name[0] != 'b') continue;
    if (name.compare(name.size() - 5, 5, ".blob") != 0) continue;
    uint64_t id = 0;
    size_t i = 1;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
      id = id * 10 + static_cast<uint64_t>(name[i] - '0');
      ++i;
    }
    if (i == 1 || referenced.count(id) != 0) continue;
    std::error_code rec;
    fs::remove(ent.path(), rec);
  }
  ++stats_.compactions;
  return Status::OK();
}

PersistStats PersistentCacheStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PersistStats s = stats_;
  s.entries = index_.size();
  return s;
}

size_t PersistentCacheStore::NumEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace ajd
