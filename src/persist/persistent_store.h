// PersistentCacheStore: the crash-safe on-disk tier under the engine's
// in-memory entropy/partition cache (engine/entropy_engine.h).
//
// The store memoizes pure computations — entropy values and stripped
// partition payloads — keyed by (relation content fingerprint, AttrSet, row
// count), the key that stays meaningful across process lifetimes
// (relation/fingerprint.h). Because relations grow by appends only, a
// persisted entry at row count M is a valid prefix FOREVER: a restarted
// process reloads it and delta-extends through the engine's bit-identical
// extension machinery instead of re-paying the cold build.
//
// On-disk layout (one directory per store):
//
//   MANIFEST         append-only journal of entry metadata. 8-byte magic,
//                    then records framed [u32 len][u32 crc32c][payload];
//                    record kinds: put / erase / quarantine. The journal is
//                    the source of truth — a blob without a manifest record
//                    does not exist.
//   blobs/b<id>.blob one immutable file per partition payload: magic,
//                    version, payload length, CRC-32C, then the raw
//                    stripped arrays. Written to b<id>.blob.tmp, fsynced,
//                    then renamed into place.
//
// Write discipline (what makes kill -9 at any byte recoverable):
//   1. blob first, manifest record second — a crash between the two leaves
//      an unreferenced blob, garbage-collected at the next open;
//   2. manifest appends are single write()s; a torn append is detected by
//      the record CRC at the next open and the tail truncated away (every
//      record before it replays intact);
//   3. compaction rewrites live records to MANIFEST.tmp, fsyncs, and
//      renames over the old journal — the classic atomic-replace; a crash
//      before the rename leaves the old journal authoritative and the tmp
//      is removed at open.
//
// Failure semantics: "degrade, never corrupt", across processes. Every blob
// is CRC-verified on load; a corrupt, truncated, or unreadable blob is
// QUARANTINED (file renamed to .quarantined, entry dropped, counter
// bumped) and the caller falls back to cold compute — a bad cache entry can
// cost time, never change an answer. All methods return Status/Result,
// never throw (out-of-memory excepted); no failure aborts the process. An
// in-process write failure tidies up (truncates the torn tail back, removes
// the tmp) so the store object stays usable; if even the tidy-up fails the
// store goes read-only until Compact() rebuilds the journal.
//
// Fault injection: persist/manifest_append, persist/blob_write,
// persist/blob_read, persist/compact_rename (util/failpoint.h). The write
// sites are torn-write capable — see persist_internal below — which is how
// the crash-recovery soak simulates kill -9 at randomized byte offsets.
//
// Thread safety: all methods are fully synchronized by one internal mutex
// (I/O included). The store is a LEAF in the lock order — it never calls
// back into engine or arbiter code — so the engine may use it while holding
// its own mutex (lock order: arbiter -> engine -> store).
#ifndef AJD_PERSIST_PERSISTENT_STORE_H_
#define AJD_PERSIST_PERSISTENT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/attr_set.h"
#include "util/status.h"

namespace ajd {

/// Tuning knobs for a PersistentCacheStore.
struct PersistOptions {
  /// fsync after manifest appends and blob writes. Turning it off trades
  /// the durability of the most recent writes for speed; recovery safety
  /// (no corruption, torn tails truncated) is unaffected.
  bool fsync_writes = true;
};

/// Metadata of one persisted entry — everything the manifest journal
/// records about it. `has_payload` entries additionally own a blob file
/// holding the partition's raw stripped arrays.
struct PersistedEntryMeta {
  uint64_t fingerprint = 0;  ///< relation content fingerprint at `rows`
  AttrSet attrs;             ///< the attribute set the entry covers
  uint64_t rows = 0;         ///< relation prefix length the entry covers
  bool has_entropy = false;  ///< `entropy` holds a served value
  double entropy = 0.0;      ///< H(attrs) over the first `rows` rows
  /// The build recipe: dense columns applied from scratch, in order
  /// (engine/entropy_engine.h CachedPartition::chain), so a reloaded
  /// partition can be delta-extended exactly like a resident one.
  std::vector<uint32_t> chain;
  /// Cardinality of chain.back()'s column at `rows` (the engine's
  /// kernel-stability check for delta extension).
  uint32_t last_col_card = 0;
  bool has_payload = false;  ///< a partition blob exists for this entry
  uint64_t blob_id = 0;      ///< blob file id (meaningful iff has_payload)
};

/// A partition's serialized form: the canonical flat arrays from
/// Partition::FlattenStripped (chunked partitions flatten on the way out,
/// so blobs are layout-independent). Rebuilt (validated) through
/// Partition::FromStripped.
struct PartitionPayload {
  std::vector<uint32_t> rows;
  std::vector<uint32_t> offsets;
};

/// Monotonic counters (lifetime of the store OBJECT; open-time recovery
/// counters describe the Open() that produced it).
struct PersistStats {
  uint64_t entries = 0;          ///< live entries right now
  uint64_t puts = 0;             ///< entries written (journal + blob)
  uint64_t dedup_puts = 0;       ///< puts skipped: identical entry resident
  uint64_t put_failures = 0;     ///< puts that failed (injected or real I/O)
  uint64_t erases = 0;           ///< entries erased
  uint64_t lookups = 0;          ///< LookupExact calls
  uint64_t hits = 0;             ///< LookupExact calls that found an entry
  uint64_t payload_loads = 0;    ///< blob loads attempted
  uint64_t payload_load_failures = 0;  ///< blob loads that failed
  uint64_t quarantined_blobs = 0;      ///< blobs quarantined by this object
  uint64_t compactions = 0;      ///< successful Compact() calls
  // Open-time recovery accounting: with the quarantine counter above, these
  // account for every entry/byte the store ever gave up on.
  uint64_t torn_tail_events = 0;   ///< manifest tails truncated at open
  uint64_t torn_tail_bytes = 0;    ///< bytes those truncations dropped
  uint64_t orphan_blobs_removed = 0;  ///< unreferenced blobs GC'd at open
  uint64_t tmp_files_removed = 0;  ///< crashed .tmp files removed at open
  uint64_t missing_blob_entries_dropped = 0;  ///< entries whose blob file
                                              ///< was gone at open
};

/// The on-disk store. Create through Open(); share one instance per cache
/// directory (AnalysisSession/EngineOptions take a shared_ptr).
class PersistentCacheStore {
 public:
  /// Opens (creating if absent) the store in `dir`, running recovery:
  /// removes crashed tmp files, truncates a torn manifest tail, replays the
  /// journal into the in-memory index, drops entries whose blob file is
  /// missing, and garbage-collects unreferenced blobs. Never aborts on
  /// damaged input — damage is dropped and counted (Stats()). IoError only
  /// when the directory itself cannot be created or the journal cannot be
  /// opened for appending.
  static Result<std::shared_ptr<PersistentCacheStore>> Open(
      const std::string& dir, const PersistOptions& options = {});

  ~PersistentCacheStore();

  PersistentCacheStore(const PersistentCacheStore&) = delete;
  PersistentCacheStore& operator=(const PersistentCacheStore&) = delete;

  /// Persists one entry (meta.has_payload/blob_id are outputs of the store,
  /// ignored on input; pass `payload` to attach a partition blob). An entry
  /// under the same (fingerprint, attrs, rows) key is REPLACED — unless the
  /// resident entry already carries everything this put would write, in
  /// which case the put is a counted no-op (spill-on-evict re-spills hot
  /// entries; rewriting identical bytes would churn the journal).
  /// Blob-then-manifest write order; on any failure the index is unchanged
  /// and the entry simply stays unpersisted.
  Status Put(const PersistedEntryMeta& meta, const PartitionPayload* payload);

  /// Exact-key probe of the in-memory index (no I/O). True on hit, with
  /// `*out` filled.
  bool LookupExact(uint64_t fingerprint, AttrSet attrs, uint64_t rows,
                   PersistedEntryMeta* out);

  /// Every live entry (the warm-restart scan; the engine filters by
  /// fingerprint chain).
  std::vector<PersistedEntryMeta> AllEntries() const;

  /// Loads and CRC-verifies the blob of an entry previously returned by
  /// LookupExact/AllEntries. NotFound when the entry no longer exists or
  /// has no payload; IoError when the blob fails verification — in which
  /// case the blob has been QUARANTINED (renamed .quarantined, entry
  /// dropped, counter bumped) and the caller must compute cold.
  Result<PartitionPayload> LoadPayload(const PersistedEntryMeta& meta);

  /// Removes an entry (journal record + blob file). OK when absent.
  Status Erase(uint64_t fingerprint, AttrSet attrs, uint64_t rows);

  /// Rewrites the journal to exactly the live entries (temp-write + fsync +
  /// atomic rename), removes blobs no live entry references, and clears the
  /// read-only flag a failed tidy-up may have set. The journal only grows
  /// between compactions; call this at maintenance points (tools/ajdcache
  /// scrub does).
  Status Compact();

  PersistStats Stats() const;
  size_t NumEntries() const;
  const std::string& dir() const { return dir_; }

 private:
  struct Key {
    uint64_t fingerprint;
    uint64_t mask;
    uint64_t rows;
    bool operator==(const Key& o) const {
      return fingerprint == o.fingerprint && mask == o.mask && rows == o.rows;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  PersistentCacheStore(std::string dir, PersistOptions options);

  Status AppendRecordLocked(const std::string& payload);
  Status WriteBlobLocked(uint64_t blob_id, const PartitionPayload& payload);
  void QuarantineBlobLocked(const Key& key, const char* why);
  std::string BlobPath(uint64_t blob_id) const;
  Status OpenManifestLocked();

  const std::string dir_;
  const std::string manifest_path_;
  const std::string blobs_dir_;
  const PersistOptions options_;

  mutable std::mutex mu_;
  int manifest_fd_ = -1;
  uint64_t manifest_size_ = 0;
  /// Set when an append failure could not be tidied up (or a simulated
  /// crash left the journal torn): further writes would append after
  /// garbage and be silently lost at the next open's tail truncation, so
  /// they are refused (FailedPrecondition) until Compact() rebuilds the
  /// journal — reads keep working throughout.
  bool read_only_ = false;
  uint64_t next_blob_id_ = 1;
  uint64_t dead_records_ = 0;
  std::unordered_map<Key, PersistedEntryMeta, KeyHash> index_;
  PersistStats stats_;
};

namespace persist_internal {
/// Test hooks for the torn-write crash simulator. `SetTornWriteBytes(k)`
/// makes the next firing write-path failpoint write only (k mod size+1)
/// bytes of its buffer; `SetCrashSimulation(true)` makes failing write
/// paths skip their tidy-up, leaving files exactly as a kill -9 would.
/// Both are inert unless a persist failpoint actually fires (i.e. outside
/// -DAJD_ENABLE_FAILPOINTS builds they are dead knobs).
void SetTornWriteBytes(uint64_t bytes);
void SetCrashSimulation(bool on);
}  // namespace persist_internal

}  // namespace ajd

#endif  // AJD_PERSIST_PERSISTENT_STORE_H_
