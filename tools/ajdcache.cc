// ajdcache: fsck-style CLI for a persistent cache directory
// (persist/persistent_store.h).
//
//   ajdcache list   <dir>   one JSON line per entry, then a summary line
//   ajdcache verify <dir>   load + CRC-verify every partition blob; corrupt
//                           blobs are quarantined (renamed .quarantined and
//                           dropped from the manifest), exactly as the
//                           engine's load path would have done lazily
//   ajdcache scrub  <dir>   delete quarantined blob files and compact the
//                           manifest down to the live entries
//
// Every mode ends with ONE machine-readable JSON summary line on stdout.
// Opening the store runs its normal crash recovery (crashed tmp files
// removed, torn manifest tail truncated, orphan blobs collected) — the
// summary's recovery counters report what it found, which makes `list` on a
// freshly crashed directory double as the post-mortem.
//
// Exit codes: 0 clean; 1 usage or open failure; 2 verify found (and
// quarantined) at least one bad blob.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "persist/persistent_store.h"

namespace {

using ajd::PersistentCacheStore;
using ajd::PersistStats;

int Usage() {
  std::fprintf(stderr, "usage: ajdcache {list|verify|scrub} <cache-dir>\n");
  return 1;
}

void PrintSummary(const char* mode, const std::string& dir,
                  const PersistStats& s, uint64_t extra_verified,
                  uint64_t extra_bad, uint64_t extra_scrubbed) {
  std::printf(
      "{\"tool\":\"ajdcache\",\"mode\":\"%s\",\"dir\":\"%s\","
      "\"entries\":%" PRIu64 ",\"verified\":%" PRIu64 ",\"bad\":%" PRIu64
      ",\"scrubbed_quarantined\":%" PRIu64 ",\"torn_tail_events\":%" PRIu64
      ",\"torn_tail_bytes\":%" PRIu64 ",\"orphan_blobs_removed\":%" PRIu64
      ",\"tmp_files_removed\":%" PRIu64
      ",\"missing_blob_entries_dropped\":%" PRIu64
      ",\"quarantined_blobs\":%" PRIu64 ",\"compactions\":%" PRIu64 "}\n",
      mode, dir.c_str(), s.entries, extra_verified, extra_bad,
      extra_scrubbed, s.torn_tail_events, s.torn_tail_bytes,
      s.orphan_blobs_removed, s.tmp_files_removed,
      s.missing_blob_entries_dropped, s.quarantined_blobs, s.compactions);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage();
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  if (mode != "list" && mode != "verify" && mode != "scrub") return Usage();

  auto opened = PersistentCacheStore::Open(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "ajdcache: cannot open %s: %s\n", dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<PersistentCacheStore> store = opened.value();

  uint64_t verified = 0, bad = 0, scrubbed = 0;
  if (mode == "list") {
    for (const auto& e : store->AllEntries()) {
      std::printf("{\"fingerprint\":\"%016" PRIx64
                  "\",\"attrs_mask\":\"%" PRIx64 "\",\"rows\":%" PRIu64
                  ",\"has_entropy\":%s,\"has_payload\":%s,\"blob_id\":%" PRIu64
                  ",\"chain_len\":%zu}\n",
                  e.fingerprint, e.attrs.mask(), e.rows,
                  e.has_entropy ? "true" : "false",
                  e.has_payload ? "true" : "false", e.blob_id,
                  e.chain.size());
    }
  } else if (mode == "verify") {
    for (const auto& e : store->AllEntries()) {
      if (!e.has_payload) continue;
      if (store->LoadPayload(e).ok()) {
        ++verified;
      } else {
        ++bad;  // the store quarantined it as a side effect
      }
    }
  } else {  // scrub
    std::error_code ec;
    const std::filesystem::path blobs = std::filesystem::path(dir) / "blobs";
    for (const auto& ent : std::filesystem::directory_iterator(blobs, ec)) {
      const std::string name = ent.path().filename().string();
      const char* suffix = ".quarantined";
      if (name.size() > std::strlen(suffix) &&
          name.compare(name.size() - std::strlen(suffix),
                       std::strlen(suffix), suffix) == 0) {
        std::error_code rec;
        if (std::filesystem::remove(ent.path(), rec)) ++scrubbed;
      }
    }
    const ajd::Status s = store->Compact();
    if (!s.ok()) {
      std::fprintf(stderr, "ajdcache: compact failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }

  PrintSummary(mode.c_str(), dir, store->Stats(), verified, bad, scrubbed);
  return mode == "verify" && bad > 0 ? 2 : 0;
}
