// bench_trajectory: merges the per-bench JSONL emitted by the bench/
// binaries into the committed trajectory format, so per-PR perf numbers
// accumulate in-repo instead of dying as CI artifacts.
//
//   bench_trajectory <out.json> <in1.jsonl> [in2.jsonl ...]
//   bench_trajectory --split <outdir> <in1.jsonl> [in2.jsonl ...]
//
// Inputs are the benches' stdout captures: one JSON object per line, each
// carrying a "bench":"<name>" field. The tool does NOT parse JSON — every
// line passes through verbatim (the emitters are the single source of
// truth for the schema) — it only groups lines by bench name and promotes
// the partition append-extension sweep ("op":"extend_...") to the headline
// series, since delta extension is the number the paper's growing-relation
// trajectory lives or dies on.
//
// The single-file form writes every bench into one document. The --split
// form writes one file PER bench, <outdir>/BENCH_<name>.json with the
// leading "perf_" stripped from the name — the committed-baseline layout
// (BENCH_partition.json, BENCH_miner.json, ...) that keeps each driver's
// Release-run numbers independently diffable.
//
// Output format (each file):
//   {
//     "format": "ajd-bench-trajectory-v1",
//     "headline": [ <extend_* lines from perf_partition> ],
//     "series": { "<bench>": [ <lines> ], ... }
//   }
//
// Exit codes: 0 written; 1 usage/IO error. Lines without a "bench" field
// are skipped with a warning (they are progress chatter, not data).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

// The value of "bench":"..." inside a raw JSON line, or "" if absent.
std::string BenchName(const std::string& line) {
  static const char kKey[] = "\"bench\":\"";
  const size_t at = line.find(kKey);
  if (at == std::string::npos) return "";
  const size_t begin = at + sizeof(kKey) - 1;
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

bool IsHeadline(const std::string& bench, const std::string& line) {
  return bench == "perf_partition" &&
         line.find("\"op\":\"extend_") != std::string::npos;
}

void EmitArray(std::FILE* out, const std::vector<std::string>& lines,
               const char* indent) {
  for (size_t i = 0; i < lines.size(); ++i) {
    std::fprintf(out, "%s%s%s\n", indent, lines[i].c_str(),
                 i + 1 < lines.size() ? "," : "");
  }
}

// One trajectory document: the shared format for both the combined file
// and each --split per-bench file.
bool WriteTrajectory(
    const std::string& path, const std::vector<std::string>& headline,
    const std::map<std::string, std::vector<std::string>>& series) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_trajectory: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"format\": \"ajd-bench-trajectory-v1\",\n");
  std::fprintf(out, "  \"headline\": [\n");
  EmitArray(out, headline, "    ");
  std::fprintf(out, "  ],\n  \"series\": {\n");
  size_t done = 0;
  for (const auto& [bench, lines] : series) {
    std::fprintf(out, "    \"%s\": [\n", bench.c_str());
    EmitArray(out, lines, "      ");
    std::fprintf(out, "    ]%s\n", ++done < series.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  return true;
}

// perf_partition -> partition, anything without the prefix stays as-is.
std::string BaselineStem(const std::string& bench) {
  static const char kPrefix[] = "perf_";
  if (bench.rfind(kPrefix, 0) == 0) {
    return bench.substr(sizeof(kPrefix) - 1);
  }
  return bench;
}

}  // namespace

int main(int argc, char** argv) {
  bool split = false;
  int arg_at = 1;
  if (argc > 1 && std::strcmp(argv[1], "--split") == 0) {
    split = true;
    arg_at = 2;
  }
  if (argc < arg_at + 2) {
    std::fprintf(stderr,
                 "usage: bench_trajectory <out.json> <in1.jsonl> "
                 "[in2.jsonl ...]\n"
                 "       bench_trajectory --split <outdir> <in1.jsonl> "
                 "[in2.jsonl ...]\n");
    return 1;
  }
  const std::string out_arg = argv[arg_at];
  std::map<std::string, std::vector<std::string>> series;
  std::vector<std::string> headline;
  for (int i = arg_at + 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "bench_trajectory: cannot read %s\n", argv[i]);
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty()) continue;
      const std::string bench = BenchName(line);
      if (bench.empty()) {
        std::fprintf(stderr, "bench_trajectory: skipping non-bench line: %s\n",
                     line.c_str());
        continue;
      }
      if (IsHeadline(bench, line)) headline.push_back(line);
      series[bench].push_back(line);
    }
  }
  if (!split) {
    return WriteTrajectory(out_arg, headline, series) ? 0 : 1;
  }
  for (const auto& [bench, lines] : series) {
    const std::string path =
        out_arg + "/BENCH_" + BaselineStem(bench) + ".json";
    std::map<std::string, std::vector<std::string>> one;
    one.emplace(bench, lines);
    std::vector<std::string> one_headline;
    for (const std::string& line : lines) {
      if (IsHeadline(bench, line)) one_headline.push_back(line);
    }
    if (!WriteTrajectory(path, one_headline, one)) return 1;
    std::fprintf(stderr, "bench_trajectory: wrote %s (%zu lines)\n",
                 path.c_str(), lines.size());
  }
  return 0;
}
