# Empty compiler generated dependencies file for schema_profiler.
# This may be replaced when dependencies are built.
