file(REMOVE_RECURSE
  "CMakeFiles/schema_profiler.dir/examples/schema_profiler.cpp.o"
  "CMakeFiles/schema_profiler.dir/examples/schema_profiler.cpp.o.d"
  "examples/schema_profiler"
  "examples/schema_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
