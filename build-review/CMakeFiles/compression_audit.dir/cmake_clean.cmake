file(REMOVE_RECURSE
  "CMakeFiles/compression_audit.dir/examples/compression_audit.cpp.o"
  "CMakeFiles/compression_audit.dir/examples/compression_audit.cpp.o.d"
  "examples/compression_audit"
  "examples/compression_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
