# Empty compiler generated dependencies file for compression_audit.
# This may be replaced when dependencies are built.
