file(REMOVE_RECURSE
  "CMakeFiles/ex41_tightness.dir/bench/ex41_tightness.cc.o"
  "CMakeFiles/ex41_tightness.dir/bench/ex41_tightness.cc.o.d"
  "bench/ex41_tightness"
  "bench/ex41_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex41_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
