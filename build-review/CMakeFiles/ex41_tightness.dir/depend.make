# Empty dependencies file for ex41_tightness.
# This may be replaced when dependencies are built.
