
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "CMakeFiles/ajd.dir/src/core/analysis.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/analysis.cc.o.d"
  "/root/repo/src/core/bounds.cc" "CMakeFiles/ajd.dir/src/core/bounds.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/bounds.cc.o.d"
  "/root/repo/src/core/certificate.cc" "CMakeFiles/ajd.dir/src/core/certificate.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/certificate.cc.o.d"
  "/root/repo/src/core/experiment.cc" "CMakeFiles/ajd.dir/src/core/experiment.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/experiment.cc.o.d"
  "/root/repo/src/core/groupwise.cc" "CMakeFiles/ajd.dir/src/core/groupwise.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/groupwise.cc.o.d"
  "/root/repo/src/core/loss.cc" "CMakeFiles/ajd.dir/src/core/loss.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/loss.cc.o.d"
  "/root/repo/src/core/mvd_check.cc" "CMakeFiles/ajd.dir/src/core/mvd_check.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/mvd_check.cc.o.d"
  "/root/repo/src/core/worstcase.cc" "CMakeFiles/ajd.dir/src/core/worstcase.cc.o" "gcc" "CMakeFiles/ajd.dir/src/core/worstcase.cc.o.d"
  "/root/repo/src/discovery/fd.cc" "CMakeFiles/ajd.dir/src/discovery/fd.cc.o" "gcc" "CMakeFiles/ajd.dir/src/discovery/fd.cc.o.d"
  "/root/repo/src/discovery/miner.cc" "CMakeFiles/ajd.dir/src/discovery/miner.cc.o" "gcc" "CMakeFiles/ajd.dir/src/discovery/miner.cc.o.d"
  "/root/repo/src/discovery/normalize.cc" "CMakeFiles/ajd.dir/src/discovery/normalize.cc.o" "gcc" "CMakeFiles/ajd.dir/src/discovery/normalize.cc.o.d"
  "/root/repo/src/engine/analysis_session.cc" "CMakeFiles/ajd.dir/src/engine/analysis_session.cc.o" "gcc" "CMakeFiles/ajd.dir/src/engine/analysis_session.cc.o.d"
  "/root/repo/src/engine/cache_arbiter.cc" "CMakeFiles/ajd.dir/src/engine/cache_arbiter.cc.o" "gcc" "CMakeFiles/ajd.dir/src/engine/cache_arbiter.cc.o.d"
  "/root/repo/src/engine/column_store.cc" "CMakeFiles/ajd.dir/src/engine/column_store.cc.o" "gcc" "CMakeFiles/ajd.dir/src/engine/column_store.cc.o.d"
  "/root/repo/src/engine/entropy_engine.cc" "CMakeFiles/ajd.dir/src/engine/entropy_engine.cc.o" "gcc" "CMakeFiles/ajd.dir/src/engine/entropy_engine.cc.o.d"
  "/root/repo/src/engine/partition.cc" "CMakeFiles/ajd.dir/src/engine/partition.cc.o" "gcc" "CMakeFiles/ajd.dir/src/engine/partition.cc.o.d"
  "/root/repo/src/engine/refine_kernels.cc" "CMakeFiles/ajd.dir/src/engine/refine_kernels.cc.o" "gcc" "CMakeFiles/ajd.dir/src/engine/refine_kernels.cc.o.d"
  "/root/repo/src/engine/worker_pool.cc" "CMakeFiles/ajd.dir/src/engine/worker_pool.cc.o" "gcc" "CMakeFiles/ajd.dir/src/engine/worker_pool.cc.o.d"
  "/root/repo/src/info/dist_info.cc" "CMakeFiles/ajd.dir/src/info/dist_info.cc.o" "gcc" "CMakeFiles/ajd.dir/src/info/dist_info.cc.o.d"
  "/root/repo/src/info/distribution.cc" "CMakeFiles/ajd.dir/src/info/distribution.cc.o" "gcc" "CMakeFiles/ajd.dir/src/info/distribution.cc.o.d"
  "/root/repo/src/info/entropy.cc" "CMakeFiles/ajd.dir/src/info/entropy.cc.o" "gcc" "CMakeFiles/ajd.dir/src/info/entropy.cc.o.d"
  "/root/repo/src/info/factorized.cc" "CMakeFiles/ajd.dir/src/info/factorized.cc.o" "gcc" "CMakeFiles/ajd.dir/src/info/factorized.cc.o.d"
  "/root/repo/src/info/j_measure.cc" "CMakeFiles/ajd.dir/src/info/j_measure.cc.o" "gcc" "CMakeFiles/ajd.dir/src/info/j_measure.cc.o.d"
  "/root/repo/src/io/csv.cc" "CMakeFiles/ajd.dir/src/io/csv.cc.o" "gcc" "CMakeFiles/ajd.dir/src/io/csv.cc.o.d"
  "/root/repo/src/io/table_printer.cc" "CMakeFiles/ajd.dir/src/io/table_printer.cc.o" "gcc" "CMakeFiles/ajd.dir/src/io/table_printer.cc.o.d"
  "/root/repo/src/jointree/gyo.cc" "CMakeFiles/ajd.dir/src/jointree/gyo.cc.o" "gcc" "CMakeFiles/ajd.dir/src/jointree/gyo.cc.o.d"
  "/root/repo/src/jointree/join_tree.cc" "CMakeFiles/ajd.dir/src/jointree/join_tree.cc.o" "gcc" "CMakeFiles/ajd.dir/src/jointree/join_tree.cc.o.d"
  "/root/repo/src/jointree/mvd.cc" "CMakeFiles/ajd.dir/src/jointree/mvd.cc.o" "gcc" "CMakeFiles/ajd.dir/src/jointree/mvd.cc.o.d"
  "/root/repo/src/random/random_relation.cc" "CMakeFiles/ajd.dir/src/random/random_relation.cc.o" "gcc" "CMakeFiles/ajd.dir/src/random/random_relation.cc.o.d"
  "/root/repo/src/random/rng.cc" "CMakeFiles/ajd.dir/src/random/rng.cc.o" "gcc" "CMakeFiles/ajd.dir/src/random/rng.cc.o.d"
  "/root/repo/src/relation/acyclic_join.cc" "CMakeFiles/ajd.dir/src/relation/acyclic_join.cc.o" "gcc" "CMakeFiles/ajd.dir/src/relation/acyclic_join.cc.o.d"
  "/root/repo/src/relation/attr_set.cc" "CMakeFiles/ajd.dir/src/relation/attr_set.cc.o" "gcc" "CMakeFiles/ajd.dir/src/relation/attr_set.cc.o.d"
  "/root/repo/src/relation/full_reducer.cc" "CMakeFiles/ajd.dir/src/relation/full_reducer.cc.o" "gcc" "CMakeFiles/ajd.dir/src/relation/full_reducer.cc.o.d"
  "/root/repo/src/relation/ops.cc" "CMakeFiles/ajd.dir/src/relation/ops.cc.o" "gcc" "CMakeFiles/ajd.dir/src/relation/ops.cc.o.d"
  "/root/repo/src/relation/relation.cc" "CMakeFiles/ajd.dir/src/relation/relation.cc.o" "gcc" "CMakeFiles/ajd.dir/src/relation/relation.cc.o.d"
  "/root/repo/src/relation/schema.cc" "CMakeFiles/ajd.dir/src/relation/schema.cc.o" "gcc" "CMakeFiles/ajd.dir/src/relation/schema.cc.o.d"
  "/root/repo/src/stats/binomial.cc" "CMakeFiles/ajd.dir/src/stats/binomial.cc.o" "gcc" "CMakeFiles/ajd.dir/src/stats/binomial.cc.o.d"
  "/root/repo/src/stats/functional_entropy.cc" "CMakeFiles/ajd.dir/src/stats/functional_entropy.cc.o" "gcc" "CMakeFiles/ajd.dir/src/stats/functional_entropy.cc.o.d"
  "/root/repo/src/stats/hypergeometric.cc" "CMakeFiles/ajd.dir/src/stats/hypergeometric.cc.o" "gcc" "CMakeFiles/ajd.dir/src/stats/hypergeometric.cc.o.d"
  "/root/repo/src/stats/inequalities.cc" "CMakeFiles/ajd.dir/src/stats/inequalities.cc.o" "gcc" "CMakeFiles/ajd.dir/src/stats/inequalities.cc.o.d"
  "/root/repo/src/stats/poisson.cc" "CMakeFiles/ajd.dir/src/stats/poisson.cc.o" "gcc" "CMakeFiles/ajd.dir/src/stats/poisson.cc.o.d"
  "/root/repo/src/stats/special.cc" "CMakeFiles/ajd.dir/src/stats/special.cc.o" "gcc" "CMakeFiles/ajd.dir/src/stats/special.cc.o.d"
  "/root/repo/src/util/math.cc" "CMakeFiles/ajd.dir/src/util/math.cc.o" "gcc" "CMakeFiles/ajd.dir/src/util/math.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/ajd.dir/src/util/status.cc.o" "gcc" "CMakeFiles/ajd.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "CMakeFiles/ajd.dir/src/util/string_util.cc.o" "gcc" "CMakeFiles/ajd.dir/src/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
