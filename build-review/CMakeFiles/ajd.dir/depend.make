# Empty dependencies file for ajd.
# This may be replaced when dependencies are built.
