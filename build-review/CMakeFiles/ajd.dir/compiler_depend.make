# Empty compiler generated dependencies file for ajd.
# This may be replaced when dependencies are built.
