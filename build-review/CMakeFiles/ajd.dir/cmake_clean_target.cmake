file(REMOVE_RECURSE
  "libajd.a"
)
