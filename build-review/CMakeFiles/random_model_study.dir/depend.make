# Empty dependencies file for random_model_study.
# This may be replaced when dependencies are built.
