file(REMOVE_RECURSE
  "CMakeFiles/random_model_study.dir/examples/random_model_study.cpp.o"
  "CMakeFiles/random_model_study.dir/examples/random_model_study.cpp.o.d"
  "examples/random_model_study"
  "examples/random_model_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_model_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
