file(REMOVE_RECURSE
  "CMakeFiles/perf_info.dir/bench/perf_info.cc.o"
  "CMakeFiles/perf_info.dir/bench/perf_info.cc.o.d"
  "bench/perf_info"
  "bench/perf_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
