# Empty compiler generated dependencies file for perf_info.
# This may be replaced when dependencies are built.
