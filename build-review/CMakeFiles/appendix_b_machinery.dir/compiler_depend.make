# Empty compiler generated dependencies file for appendix_b_machinery.
# This may be replaced when dependencies are built.
