file(REMOVE_RECURSE
  "CMakeFiles/appendix_b_machinery.dir/bench/appendix_b_machinery.cc.o"
  "CMakeFiles/appendix_b_machinery.dir/bench/appendix_b_machinery.cc.o.d"
  "bench/appendix_b_machinery"
  "bench/appendix_b_machinery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_b_machinery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
