file(REMOVE_RECURSE
  "CMakeFiles/ub_entropy_sweep.dir/bench/ub_entropy_sweep.cc.o"
  "CMakeFiles/ub_entropy_sweep.dir/bench/ub_entropy_sweep.cc.o.d"
  "bench/ub_entropy_sweep"
  "bench/ub_entropy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ub_entropy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
