# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ub_entropy_sweep.
