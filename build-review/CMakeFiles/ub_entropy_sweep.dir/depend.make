# Empty dependencies file for ub_entropy_sweep.
# This may be replaced when dependencies are built.
