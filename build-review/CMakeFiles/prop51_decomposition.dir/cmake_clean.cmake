file(REMOVE_RECURSE
  "CMakeFiles/prop51_decomposition.dir/bench/prop51_decomposition.cc.o"
  "CMakeFiles/prop51_decomposition.dir/bench/prop51_decomposition.cc.o.d"
  "bench/prop51_decomposition"
  "bench/prop51_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop51_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
