# Empty compiler generated dependencies file for prop51_decomposition.
# This may be replaced when dependencies are built.
