# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for groupwise_eq44.
