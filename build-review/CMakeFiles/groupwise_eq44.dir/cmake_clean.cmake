file(REMOVE_RECURSE
  "CMakeFiles/groupwise_eq44.dir/bench/groupwise_eq44.cc.o"
  "CMakeFiles/groupwise_eq44.dir/bench/groupwise_eq44.cc.o.d"
  "bench/groupwise_eq44"
  "bench/groupwise_eq44.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupwise_eq44.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
