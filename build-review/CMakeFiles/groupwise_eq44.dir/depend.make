# Empty dependencies file for groupwise_eq44.
# This may be replaced when dependencies are built.
