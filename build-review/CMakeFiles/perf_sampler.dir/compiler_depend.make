# Empty compiler generated dependencies file for perf_sampler.
# This may be replaced when dependencies are built.
