file(REMOVE_RECURSE
  "CMakeFiles/perf_sampler.dir/bench/perf_sampler.cc.o"
  "CMakeFiles/perf_sampler.dir/bench/perf_sampler.cc.o.d"
  "bench/perf_sampler"
  "bench/perf_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
