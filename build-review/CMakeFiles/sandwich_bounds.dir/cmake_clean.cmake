file(REMOVE_RECURSE
  "CMakeFiles/sandwich_bounds.dir/bench/sandwich_bounds.cc.o"
  "CMakeFiles/sandwich_bounds.dir/bench/sandwich_bounds.cc.o.d"
  "bench/sandwich_bounds"
  "bench/sandwich_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandwich_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
