# Empty compiler generated dependencies file for sandwich_bounds.
# This may be replaced when dependencies are built.
