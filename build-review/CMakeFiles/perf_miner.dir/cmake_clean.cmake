file(REMOVE_RECURSE
  "CMakeFiles/perf_miner.dir/bench/perf_miner.cc.o"
  "CMakeFiles/perf_miner.dir/bench/perf_miner.cc.o.d"
  "bench/perf_miner"
  "bench/perf_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
