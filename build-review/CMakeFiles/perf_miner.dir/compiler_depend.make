# Empty compiler generated dependencies file for perf_miner.
# This may be replaced when dependencies are built.
