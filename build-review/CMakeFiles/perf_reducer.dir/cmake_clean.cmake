file(REMOVE_RECURSE
  "CMakeFiles/perf_reducer.dir/bench/perf_reducer.cc.o"
  "CMakeFiles/perf_reducer.dir/bench/perf_reducer.cc.o.d"
  "bench/perf_reducer"
  "bench/perf_reducer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_reducer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
