# Empty dependencies file for perf_reducer.
# This may be replaced when dependencies are built.
