# Empty compiler generated dependencies file for perf_acyclic_join.
# This may be replaced when dependencies are built.
