file(REMOVE_RECURSE
  "CMakeFiles/perf_acyclic_join.dir/bench/perf_acyclic_join.cc.o"
  "CMakeFiles/perf_acyclic_join.dir/bench/perf_acyclic_join.cc.o.d"
  "bench/perf_acyclic_join"
  "bench/perf_acyclic_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_acyclic_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
