file(REMOVE_RECURSE
  "CMakeFiles/perf_entropy_engine.dir/bench/perf_entropy_engine.cc.o"
  "CMakeFiles/perf_entropy_engine.dir/bench/perf_entropy_engine.cc.o.d"
  "bench/perf_entropy_engine"
  "bench/perf_entropy_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_entropy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
