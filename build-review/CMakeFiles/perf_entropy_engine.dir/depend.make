# Empty dependencies file for perf_entropy_engine.
# This may be replaced when dependencies are built.
