file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_gap.dir/bench/lower_bound_gap.cc.o"
  "CMakeFiles/lower_bound_gap.dir/bench/lower_bound_gap.cc.o.d"
  "bench/lower_bound_gap"
  "bench/lower_bound_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
