# Empty compiler generated dependencies file for lower_bound_gap.
# This may be replaced when dependencies are built.
