# Empty dependencies file for fig1_mi_scattering.
# This may be replaced when dependencies are built.
