file(REMOVE_RECURSE
  "CMakeFiles/fig1_mi_scattering.dir/bench/fig1_mi_scattering.cc.o"
  "CMakeFiles/fig1_mi_scattering.dir/bench/fig1_mi_scattering.cc.o.d"
  "bench/fig1_mi_scattering"
  "bench/fig1_mi_scattering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mi_scattering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
