file(REMOVE_RECURSE
  "CMakeFiles/sample_size_planner.dir/examples/sample_size_planner.cpp.o"
  "CMakeFiles/sample_size_planner.dir/examples/sample_size_planner.cpp.o.d"
  "examples/sample_size_planner"
  "examples/sample_size_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_size_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
