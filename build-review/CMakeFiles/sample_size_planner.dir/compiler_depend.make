# Empty compiler generated dependencies file for sample_size_planner.
# This may be replaced when dependencies are built.
