# Empty compiler generated dependencies file for perf_partition.
# This may be replaced when dependencies are built.
