file(REMOVE_RECURSE
  "CMakeFiles/perf_partition.dir/bench/perf_partition.cc.o"
  "CMakeFiles/perf_partition.dir/bench/perf_partition.cc.o.d"
  "bench/perf_partition"
  "bench/perf_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
