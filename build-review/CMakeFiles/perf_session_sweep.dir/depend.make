# Empty dependencies file for perf_session_sweep.
# This may be replaced when dependencies are built.
