file(REMOVE_RECURSE
  "CMakeFiles/perf_session_sweep.dir/bench/perf_session_sweep.cc.o"
  "CMakeFiles/perf_session_sweep.dir/bench/perf_session_sweep.cc.o.d"
  "bench/perf_session_sweep"
  "bench/perf_session_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_session_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
