file(REMOVE_RECURSE
  "CMakeFiles/ub_mvd_sweep.dir/bench/ub_mvd_sweep.cc.o"
  "CMakeFiles/ub_mvd_sweep.dir/bench/ub_mvd_sweep.cc.o.d"
  "bench/ub_mvd_sweep"
  "bench/ub_mvd_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ub_mvd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
