# Empty compiler generated dependencies file for ub_mvd_sweep.
# This may be replaced when dependencies are built.
