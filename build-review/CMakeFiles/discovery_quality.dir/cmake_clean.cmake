file(REMOVE_RECURSE
  "CMakeFiles/discovery_quality.dir/bench/discovery_quality.cc.o"
  "CMakeFiles/discovery_quality.dir/bench/discovery_quality.cc.o.d"
  "bench/discovery_quality"
  "bench/discovery_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
