# Empty compiler generated dependencies file for discovery_quality.
# This may be replaced when dependencies are built.
