
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acyclic_join_test.cc" "CMakeFiles/ajd_tests.dir/tests/acyclic_join_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/acyclic_join_test.cc.o.d"
  "/root/repo/tests/analysis_test.cc" "CMakeFiles/ajd_tests.dir/tests/analysis_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/analysis_test.cc.o.d"
  "/root/repo/tests/attr_set_test.cc" "CMakeFiles/ajd_tests.dir/tests/attr_set_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/attr_set_test.cc.o.d"
  "/root/repo/tests/bounds_test.cc" "CMakeFiles/ajd_tests.dir/tests/bounds_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/bounds_test.cc.o.d"
  "/root/repo/tests/cache_arbiter_test.cc" "CMakeFiles/ajd_tests.dir/tests/cache_arbiter_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/cache_arbiter_test.cc.o.d"
  "/root/repo/tests/certificate_test.cc" "CMakeFiles/ajd_tests.dir/tests/certificate_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/certificate_test.cc.o.d"
  "/root/repo/tests/dist_info_test.cc" "CMakeFiles/ajd_tests.dir/tests/dist_info_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/dist_info_test.cc.o.d"
  "/root/repo/tests/distribution_test.cc" "CMakeFiles/ajd_tests.dir/tests/distribution_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/distribution_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "CMakeFiles/ajd_tests.dir/tests/edge_cases_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/edge_cases_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "CMakeFiles/ajd_tests.dir/tests/engine_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/engine_test.cc.o.d"
  "/root/repo/tests/entropy_test.cc" "CMakeFiles/ajd_tests.dir/tests/entropy_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/entropy_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "CMakeFiles/ajd_tests.dir/tests/experiment_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/experiment_test.cc.o.d"
  "/root/repo/tests/factorized_test.cc" "CMakeFiles/ajd_tests.dir/tests/factorized_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/factorized_test.cc.o.d"
  "/root/repo/tests/fd_test.cc" "CMakeFiles/ajd_tests.dir/tests/fd_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/fd_test.cc.o.d"
  "/root/repo/tests/full_reducer_test.cc" "CMakeFiles/ajd_tests.dir/tests/full_reducer_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/full_reducer_test.cc.o.d"
  "/root/repo/tests/groupwise_test.cc" "CMakeFiles/ajd_tests.dir/tests/groupwise_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/groupwise_test.cc.o.d"
  "/root/repo/tests/gyo_test.cc" "CMakeFiles/ajd_tests.dir/tests/gyo_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/gyo_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "CMakeFiles/ajd_tests.dir/tests/integration_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "CMakeFiles/ajd_tests.dir/tests/io_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/io_test.cc.o.d"
  "/root/repo/tests/j_measure_test.cc" "CMakeFiles/ajd_tests.dir/tests/j_measure_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/j_measure_test.cc.o.d"
  "/root/repo/tests/join_tree_test.cc" "CMakeFiles/ajd_tests.dir/tests/join_tree_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/join_tree_test.cc.o.d"
  "/root/repo/tests/loss_test.cc" "CMakeFiles/ajd_tests.dir/tests/loss_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/loss_test.cc.o.d"
  "/root/repo/tests/miner_parallel_test.cc" "CMakeFiles/ajd_tests.dir/tests/miner_parallel_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/miner_parallel_test.cc.o.d"
  "/root/repo/tests/miner_test.cc" "CMakeFiles/ajd_tests.dir/tests/miner_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/miner_test.cc.o.d"
  "/root/repo/tests/mvd_check_test.cc" "CMakeFiles/ajd_tests.dir/tests/mvd_check_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/mvd_check_test.cc.o.d"
  "/root/repo/tests/normalize_test.cc" "CMakeFiles/ajd_tests.dir/tests/normalize_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/normalize_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "CMakeFiles/ajd_tests.dir/tests/ops_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/ops_test.cc.o.d"
  "/root/repo/tests/random_relation_test.cc" "CMakeFiles/ajd_tests.dir/tests/random_relation_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/random_relation_test.cc.o.d"
  "/root/repo/tests/relation_test.cc" "CMakeFiles/ajd_tests.dir/tests/relation_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/relation_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "CMakeFiles/ajd_tests.dir/tests/rng_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/rng_test.cc.o.d"
  "/root/repo/tests/session_stress_test.cc" "CMakeFiles/ajd_tests.dir/tests/session_stress_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/session_stress_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "CMakeFiles/ajd_tests.dir/tests/stats_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/stats_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "CMakeFiles/ajd_tests.dir/tests/util_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/util_test.cc.o.d"
  "/root/repo/tests/worstcase_test.cc" "CMakeFiles/ajd_tests.dir/tests/worstcase_test.cc.o" "gcc" "CMakeFiles/ajd_tests.dir/tests/worstcase_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/ajd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
