# Empty dependencies file for ajd_tests.
# This may be replaced when dependencies are built.
