#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.h"
#include "io/table_printer.h"
#include "relation/ops.h"

namespace ajd {
namespace {

TEST(Csv, ReadSimpleWithHeader) {
  std::istringstream in("city,state\nSeattle,WA\nPortland,OR\n");
  Relation r = ReadCsv(in).value();
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.schema().attr(0).name, "city");
  EXPECT_EQ(r.RowToString(0), "(Seattle, WA)");
}

TEST(Csv, ReadWithoutHeaderNamesColumns) {
  std::istringstream in("1,2\n3,4\n");
  CsvOptions options;
  options.has_header = false;
  Relation r = ReadCsv(in, options).value();
  EXPECT_EQ(r.schema().attr(0).name, "col0");
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Csv, DedupesByDefault) {
  std::istringstream in("a,b\nx,y\nx,y\nx,z\n");
  Relation r = ReadCsv(in).value();
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Csv, MultisetModeKeepsDuplicates) {
  std::istringstream in("a\nv\nv\n");
  CsvOptions options;
  options.dedupe = false;
  Relation r = ReadCsv(in, options).value();
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Csv, QuotedFieldsWithCommasAndQuotes) {
  std::istringstream in("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
  Relation r = ReadCsv(in).value();
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.dict(0)->ValueOf(r.At(0, 0)), "Smith, John");
  EXPECT_EQ(r.dict(1)->ValueOf(r.At(0, 1)), "said \"hi\"");
}

TEST(Csv, RaggedRowsFail) {
  std::istringstream in("a,b\n1\n");
  EXPECT_FALSE(ReadCsv(in).ok());
}

TEST(Csv, EmptyInputFails) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsv(in).ok());
}

TEST(Csv, RoundTripPreservesRelation) {
  std::istringstream in("a,b\nx,1\ny,2\nz,1\n");
  Relation r = ReadCsv(in).value();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, out).ok());
  std::istringstream back(out.str());
  Relation r2 = ReadCsv(back).value();
  EXPECT_TRUE(SetEquals(Project(r, r.schema().AllAttrs()),
                        Project(r2, r2.schema().AllAttrs())));
}

TEST(Csv, WriteQuotesWhenNeeded) {
  Schema s = Schema::Make({{"n", 0}}).value();
  RelationBuilder b(s);
  b.AddStringRow({"has,comma"});
  Relation r = std::move(b).Build();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, out).ok());
  EXPECT_NE(out.str().find("\"has,comma\""), std::string::npos);
}

TEST(Csv, FileRoundTrip) {
  Schema s = Schema::Make({{"k", 0}, {"v", 0}}).value();
  RelationBuilder b(s);
  b.AddStringRow({"a", "1"});
  b.AddStringRow({"b", "2"});
  Relation r = std::move(b).Build();
  const std::string path = "/tmp/ajd_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(r, path).ok());
  Relation r2 = ReadCsvFile(path).value();
  EXPECT_EQ(r2.NumRows(), 2u);
}

TEST(Csv, MissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/x.csv").status().code(),
            StatusCode::kIoError);
}

TEST(Csv, ResumeIngestMatchesUninterruptedBitIdentical) {
  // An ingest that stops after two committed batches (the "crash"), then a
  // second pass resuming at the recorded offset, must land exactly the
  // relation an uninterrupted ingest produces.
  const std::string text =
      "a,b\n"
      "x1,y1\nx2,y2\n"
      "x3,y3\nx4,y4\n"
      "x5,y5\nx6,y6\nx7,y7\n";
  CsvOptions opts;
  opts.dedupe = false;
  auto empty_rel = [] {
    Schema s = Schema::Make({{"a", 0}, {"b", 0}}).value();
    return std::move(RelationBuilder(s)).Build(false);
  };

  Relation clean = empty_rel();
  {
    std::istringstream in(text);
    ASSERT_TRUE(AppendCsvBatches(in, &clean, opts, 2).ok());
    ASSERT_EQ(clean.NumRows(), 7u);
  }

  // First pass sees only a prefix of the file (the bytes that made it
  // before the interruption): 4 complete data rows.
  const size_t prefix_end = text.find("x5");
  Relation r = empty_rel();
  CsvIngestSummary first;
  {
    std::istringstream in(text.substr(0, prefix_end));
    ASSERT_TRUE(AppendCsvBatches(in, &r, opts, 2, &first).ok());
  }
  EXPECT_EQ(first.batches_committed, 2u);
  EXPECT_EQ(r.NumRows(), 4u);
  ASSERT_EQ(first.resume_offset, static_cast<int64_t>(prefix_end));

  // Second pass: the full file again, resumed at the recorded offset. The
  // header lies before the offset — the continuation must not re-consume
  // (or misparse) it.
  CsvIngestSummary resumed;
  {
    std::istringstream in(text);
    ASSERT_TRUE(
        ResumeCsvIngest(in, &r, opts, 2, first.resume_offset, &resumed)
            .ok());
  }
  EXPECT_EQ(resumed.rows_appended, 3u);
  EXPECT_EQ(r.NumRows(), clean.NumRows());
  EXPECT_EQ(r.data(), clean.data());
  for (uint32_t a = 0; a < 2; ++a) {
    ASSERT_NE(r.dict(a), nullptr);
    EXPECT_EQ(r.dict(a)->size(), clean.dict(a)->size());
  }
}

TEST(Csv, ResumeIngestRejectsNegativeOffset) {
  std::istringstream in("a,b\nx,y\n");
  Schema s = Schema::Make({{"a", 0}, {"b", 0}}).value();
  Relation r = std::move(RelationBuilder(s)).Build(false);
  CsvOptions opts;
  // -1 is AppendCsvBatches' "stream not resumable" sentinel.
  EXPECT_EQ(ResumeCsvIngest(in, &r, opts, 2, -1).code(),
            StatusCode::kInvalidArgument);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"id", "value"});
  t.AddRow({"1", "short"});
  t.AddRow({"22", "a-much-longer-value"});
  std::string out = t.Render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("id"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-value"), std::string::npos);
}

TEST(TablePrinter, CountsRows) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.NumRows(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.NumRows(), 1u);
}

}  // namespace
}  // namespace ajd
