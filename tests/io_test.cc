#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.h"
#include "io/table_printer.h"
#include "relation/ops.h"

namespace ajd {
namespace {

TEST(Csv, ReadSimpleWithHeader) {
  std::istringstream in("city,state\nSeattle,WA\nPortland,OR\n");
  Relation r = ReadCsv(in).value();
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.schema().attr(0).name, "city");
  EXPECT_EQ(r.RowToString(0), "(Seattle, WA)");
}

TEST(Csv, ReadWithoutHeaderNamesColumns) {
  std::istringstream in("1,2\n3,4\n");
  CsvOptions options;
  options.has_header = false;
  Relation r = ReadCsv(in, options).value();
  EXPECT_EQ(r.schema().attr(0).name, "col0");
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Csv, DedupesByDefault) {
  std::istringstream in("a,b\nx,y\nx,y\nx,z\n");
  Relation r = ReadCsv(in).value();
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Csv, MultisetModeKeepsDuplicates) {
  std::istringstream in("a\nv\nv\n");
  CsvOptions options;
  options.dedupe = false;
  Relation r = ReadCsv(in, options).value();
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Csv, QuotedFieldsWithCommasAndQuotes) {
  std::istringstream in("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
  Relation r = ReadCsv(in).value();
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.dict(0)->ValueOf(r.At(0, 0)), "Smith, John");
  EXPECT_EQ(r.dict(1)->ValueOf(r.At(0, 1)), "said \"hi\"");
}

TEST(Csv, RaggedRowsFail) {
  std::istringstream in("a,b\n1\n");
  EXPECT_FALSE(ReadCsv(in).ok());
}

TEST(Csv, EmptyInputFails) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsv(in).ok());
}

TEST(Csv, RoundTripPreservesRelation) {
  std::istringstream in("a,b\nx,1\ny,2\nz,1\n");
  Relation r = ReadCsv(in).value();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, out).ok());
  std::istringstream back(out.str());
  Relation r2 = ReadCsv(back).value();
  EXPECT_TRUE(SetEquals(Project(r, r.schema().AllAttrs()),
                        Project(r2, r2.schema().AllAttrs())));
}

TEST(Csv, WriteQuotesWhenNeeded) {
  Schema s = Schema::Make({{"n", 0}}).value();
  RelationBuilder b(s);
  b.AddStringRow({"has,comma"});
  Relation r = std::move(b).Build();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, out).ok());
  EXPECT_NE(out.str().find("\"has,comma\""), std::string::npos);
}

TEST(Csv, FileRoundTrip) {
  Schema s = Schema::Make({{"k", 0}, {"v", 0}}).value();
  RelationBuilder b(s);
  b.AddStringRow({"a", "1"});
  b.AddStringRow({"b", "2"});
  Relation r = std::move(b).Build();
  const std::string path = "/tmp/ajd_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(r, path).ok());
  Relation r2 = ReadCsvFile(path).value();
  EXPECT_EQ(r2.NumRows(), 2u);
}

TEST(Csv, MissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/x.csv").status().code(),
            StatusCode::kIoError);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"id", "value"});
  t.AddRow({"1", "short"});
  t.AddRow({"22", "a-much-longer-value"});
  std::string out = t.Render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("id"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-value"), std::string::npos);
}

TEST(TablePrinter, CountsRows) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.NumRows(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.NumRows(), 1u);
}

}  // namespace
}  // namespace ajd
