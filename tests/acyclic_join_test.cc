#include <gtest/gtest.h>

#include "core/worstcase.h"
#include "random/rng.h"
#include "relation/acyclic_join.h"
#include "relation/ops.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(CountAcyclicJoin, LosslessInstanceYieldsN) {
  // A relation that satisfies C ->> A | B exactly.
  Rng rng(5);
  Instance inst = MakeLosslessMvdInstance(6, 6, 3, 2, 2, &rng).value();
  AcyclicJoinCount count = CountAcyclicJoin(inst.relation, inst.tree);
  EXPECT_EQ(count.exact.value(), inst.relation.NumRows());
}

TEST(CountAcyclicJoin, DiagonalInstanceIsNSquared) {
  Instance inst = MakeDiagonalInstance(10).value();
  AcyclicJoinCount count = CountAcyclicJoin(inst.relation, inst.tree);
  EXPECT_EQ(count.exact.value(), 100u);
  EXPECT_DOUBLE_EQ(count.approx, 100.0);
}

TEST(CountAcyclicJoin, SingleBagIsProjectionSize) {
  Rng rng(6);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 30);
  JoinTree t = JoinTree::Make({AttrSet{0, 1, 2}}, {}).value();
  AcyclicJoinCount count = CountAcyclicJoin(r, t);
  EXPECT_EQ(count.exact.value(), r.NumRows());
}

// Cross-check: count propagation equals the size of the materialized join
// on randomized relations and trees. This is the central correctness
// property of the Yannakakis counting engine.
TEST(CountAcyclicJoin, MatchesMaterializedJoinOnRandomInputs) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    AcyclicJoinCount count = CountAcyclicJoin(r, t);
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    ASSERT_TRUE(count.exact.has_value());
    EXPECT_EQ(count.exact.value(), joined.NumRows())
        << t.ToString() << "\n"
        << r.ToString(50);
    EXPECT_DOUBLE_EQ(count.approx,
                     static_cast<double>(joined.NumRows()));
  }
}

TEST(CountAcyclicJoin, CountIsRootInvariant) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    AcyclicJoinCount base = CountAcyclicJoin(r, t);
    // The engine roots at 0 internally; rebuilding the same tree with a
    // different node order must not change the count. Exercise via
    // decompositions from each root through materialization equality.
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    EXPECT_EQ(base.exact.value(), joined.NumRows());
  }
}

TEST(MaterializeAcyclicJoin, ContainsOriginalRelation) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 25);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    for (uint64_t i = 0; i < r.NumRows(); ++i) {
      EXPECT_TRUE(joined.ContainsRow(r.Row(i)));
    }
  }
}

TEST(SpuriousTuples, DiagonalInstanceHasNSquaredMinusN) {
  Instance inst = MakeDiagonalInstance(7).value();
  Relation spurious = SpuriousTuples(inst.relation, inst.tree).value();
  EXPECT_EQ(spurious.NumRows(), 49u - 7u);
  // None of the spurious tuples are in R.
  for (uint64_t i = 0; i < spurious.NumRows(); ++i) {
    EXPECT_FALSE(inst.relation.ContainsRow(spurious.Row(i)));
  }
}

TEST(SpuriousTuples, EmptyForLosslessInstance) {
  Rng rng(10);
  Instance inst = MakeLosslessMvdInstance(5, 5, 4, 2, 3, &rng).value();
  Relation spurious = SpuriousTuples(inst.relation, inst.tree).value();
  EXPECT_EQ(spurious.NumRows(), 0u);
}

TEST(SpuriousTuples, JoinSizeDecomposition) {
  // |R'| = |R| + |spurious| always.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    Relation spurious = SpuriousTuples(r, t).value();
    AcyclicJoinCount count = CountAcyclicJoin(r, t);
    EXPECT_EQ(count.exact.value(), r.NumRows() + spurious.NumRows());
  }
}

TEST(ReorderColumns, PermutesByName) {
  Schema s = Schema::Make({{"A", 2}, {"B", 3}, {"C", 4}}).value();
  Relation r = Relation::FromRows(s, {{1, 2, 3}}).value();
  Relation out = ReorderColumns(r, {"C", "A"}).value();
  EXPECT_EQ(out.NumAttrs(), 2u);
  EXPECT_EQ(out.schema().attr(0).name, "C");
  EXPECT_EQ(out.At(0, 0), 3u);
  EXPECT_EQ(out.At(0, 1), 1u);
}

TEST(ReorderColumns, UnknownNameFails) {
  Schema s = Schema::Make({{"A", 2}}).value();
  Relation r = Relation::FromRows(s, {{0}}).value();
  EXPECT_FALSE(ReorderColumns(r, {"Z"}).ok());
}

TEST(CountAcyclicJoin, TreeOverAttributeSubsetCounts) {
  // Tree over attributes {0,1} of a 3-attribute relation: the join is over
  // the projection.
  Rng rng(12);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 25);
  JoinTree t = JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 1}}).value();
  AcyclicJoinCount count = CountAcyclicJoin(r, t);
  uint64_t expected = CountDistinct(r, AttrSet{0}) *
                      CountDistinct(r, AttrSet{1});
  EXPECT_EQ(count.exact.value(), expected);
}

}  // namespace
}  // namespace ajd
