#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"
#include "core/certificate.h"
#include "core/loss.h"
#include "core/worstcase.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(Certificate, AssemblesPerMvdIngredients) {
  Rng rng(430);
  Instance inst = MakeLosslessMvdInstance(8, 8, 4, 3, 3, &rng).value();
  LossCertificate cert = CertifyLoss(inst.relation, inst.tree).value();
  ASSERT_EQ(cert.mvds.size(), 1u);
  EXPECT_NEAR(cert.mvds[0].cmi, 0.0, 1e-9);
  EXPECT_GT(cert.mvds[0].epsilon, 0.0);
  EXPECT_NEAR(cert.bound_nats, cert.mvds[0].cmi + cert.mvds[0].epsilon,
              1e-12);
  // eps* is thousands of nats at this scale, so the rho form may overflow
  // to infinity; the two renderings must at least agree.
  if (std::isinf(std::expm1(cert.bound_nats))) {
    EXPECT_TRUE(std::isinf(cert.bound_rho));
  } else {
    EXPECT_NEAR(cert.bound_rho, std::expm1(cert.bound_nats),
                1e-6 * std::fabs(cert.bound_rho));
  }
}

TEST(Certificate, BoundDominatesActualLossOnRandomModel) {
  // On random-model draws the certified bound must dominate the observed
  // loss (the constants make it loose, never wrong at these scales).
  Rng rng(431);
  RandomRelationSpec spec;
  spec.domain_sizes = {12, 12, 4};
  spec.num_tuples = 288;
  JoinTree tree =
      JoinTree::Make({AttrSet{0, 2}, AttrSet{1, 2}}, {{0, 1}}).value();
  for (int trial = 0; trial < 15; ++trial) {
    Relation r = SampleRandomRelation(spec, &rng).value();
    LossCertificate cert = CertifyLoss(r, tree).value();
    LossReport loss = ComputeLoss(r, tree).value();
    EXPECT_LE(loss.log1p_rho, cert.bound_nats + 1e-9);
  }
}

TEST(Certificate, FlagsUnqualifiedScales) {
  // Laptop-scale instances never satisfy (37); the certificate must say
  // ADVISORY rather than claim the guarantee.
  Rng rng(432);
  Instance inst = MakeLosslessMvdInstance(10, 10, 5, 3, 3, &rng).value();
  LossCertificate cert = CertifyLoss(inst.relation, inst.tree).value();
  EXPECT_FALSE(cert.fully_qualified);
  EXPECT_NE(cert.ToString().find("ADVISORY"), std::string::npos);
}

TEST(Certificate, SplitsDeltaAcrossMvds) {
  // More MVDs => smaller per-MVD delta => larger per-MVD epsilon.
  Rng rng(433);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 6, 200);
  JoinTree two =
      JoinTree::Make({AttrSet{0, 1}, AttrSet{1, 2, 3}}, {{0, 1}}).value();
  JoinTree three = JoinTree::Path(
                       {AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}})
                       .value();
  LossCertificate c2 = CertifyLoss(r, two).value();
  LossCertificate c3 = CertifyLoss(r, three).value();
  EXPECT_EQ(c2.mvds.size(), 1u);
  EXPECT_EQ(c3.mvds.size(), 2u);
}

TEST(Certificate, ValidatesInputs) {
  Instance inst = MakeDiagonalInstance(4).value();
  EXPECT_FALSE(CertifyLoss(inst.relation, inst.tree, 0.0).ok());
  JoinTree one = JoinTree::Make({AttrSet{0, 1}}, {}).value();
  EXPECT_FALSE(CertifyLoss(inst.relation, one).ok());
}

TEST(PlanSampleSize, MonotoneAndSufficient) {
  const uint64_t d = 64;
  Result<uint64_t> n = PlanSampleSize(d, d, 4, 0.05, 0.5);
  ASSERT_TRUE(n.ok());
  // The plan is sufficient...
  EXPECT_LE(EpsilonStarMvd(d, d, 4, n.value(), 0.05), 0.5);
  EXPECT_TRUE(Theorem51Applies(d, d, 4, n.value(), 0.05));
  // ...and minimal.
  EXPECT_FALSE(Theorem51Applies(d, d, 4, n.value() - 1, 0.05) &&
               EpsilonStarMvd(d, d, 4, n.value() - 1, 0.05) <= 0.5);
  // Tighter targets need more samples.
  Result<uint64_t> tighter = PlanSampleSize(d, d, 4, 0.05, 0.1);
  ASSERT_TRUE(tighter.ok());
  EXPECT_GT(tighter.value(), n.value());
}

TEST(PlanSampleSize, RespectsCap) {
  EXPECT_EQ(PlanSampleSize(1 << 20, 1 << 20, 1 << 10, 0.05, 1e-6,
                           /*n_cap=*/1 << 20)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(PlanSampleSize, ValidatesInputs) {
  EXPECT_FALSE(PlanSampleSize(8, 8, 2, 0.0, 0.1).ok());
  EXPECT_FALSE(PlanSampleSize(8, 8, 2, 0.05, -1.0).ok());
}

}  // namespace
}  // namespace ajd
