// End-to-end pipelines across modules: sample -> mine -> analyze -> verify
// the paper's relationships; CSV -> profile; random model -> bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/analysis.h"
#include "core/bounds.h"
#include "core/experiment.h"
#include "core/worstcase.h"
#include "discovery/miner.h"
#include "info/j_measure.h"
#include "io/csv.h"
#include "jointree/gyo.h"
#include "random/random_relation.h"
#include "relation/acyclic_join.h"
#include "relation/ops.h"
#include "test_util.h"

namespace ajd {
namespace {

// Pipeline 1: plant an AJD with noise, mine a schema, and confirm the mined
// schema's measured loss respects both the Lemma 4.1 lower bound and the
// Prop 5.1 upper decomposition.
TEST(Integration, PlantMineAnalyze) {
  Rng rng(201);
  Instance planted = MakeLosslessMvdInstance(12, 12, 8, 4, 4, &rng).value();
  Relation noisy = AddNoiseTuples(planted.relation, 16, &rng).value();

  MinerOptions options;
  options.max_bag_size = 2;
  MinerReport mined = MineJoinTree(noisy, options).value();
  AjdAnalysis a = AnalyzeAjd(noisy, mined.tree).value();

  EXPECT_NEAR(a.j, a.kl, 1e-8);
  EXPECT_LE(a.j, a.loss.log1p_rho + 1e-8);
  EXPECT_LE(a.loss.log1p_rho, a.prop51_bound + 1e-8);
  // The mined schema must beat the worst case (full independence).
  JoinTree independent =
      JoinTree::FromMvdPartition(
          AttrSet(), {AttrSet{0}, AttrSet{1}, AttrSet{2}})
          .value();
  AjdAnalysis worst = AnalyzeAjd(noisy, independent).value();
  EXPECT_LE(a.loss.rho, worst.loss.rho + 1e-9);
}

// Pipeline 2: CSV in, GYO over a hand-written schema, loss analysis out.
TEST(Integration, CsvProfileWithDeclaredSchema) {
  std::istringstream in(
      "emp,dept,building\n"
      "ann,db,dragon\n"
      "bob,db,dragon\n"
      "cat,ml,lion\n"
      "dan,ml,lion\n"
      "eve,sys,lion\n");
  Relation r = ReadCsv(in).value();
  // Schema {emp,dept},{dept,building}: dept determines building here, so
  // the decomposition is lossless.
  AttrSet ed = r.schema().SetOf({"emp", "dept"}).value();
  AttrSet db = r.schema().SetOf({"dept", "building"}).value();
  Result<JoinTree> tree = BuildJoinTree({ed, db});
  ASSERT_TRUE(tree.ok());
  AjdAnalysis a = AnalyzeAjd(r, tree.value()).value();
  EXPECT_TRUE(a.lossless);
  EXPECT_NEAR(a.j, 0.0, 1e-10);
}

// Pipeline 3: the random relation model feeds the Theorem 5.1 study whose
// outcome is consistent with the deterministic bounds.
TEST(Integration, RandomModelRespectsAllBounds) {
  Rng rng(202);
  RandomRelationSpec spec;
  spec.domain_sizes = {16, 16, 4};
  spec.num_tuples = 256;
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = SampleRandomRelation(spec, &rng).value();
    JoinTree t =
        JoinTree::Make({AttrSet{0, 2}, AttrSet{1, 2}}, {{0, 1}}).value();
    AjdAnalysis a = AnalyzeAjd(r, t).value();
    EXPECT_LE(a.j, a.loss.log1p_rho + 1e-8);           // Lemma 4.1
    EXPECT_NEAR(a.j, a.kl, 1e-8);                      // Theorem 3.2
    EXPECT_LE(a.loss.log1p_rho, a.prop51_bound + 1e-8);  // Prop 5.1
  }
}

// Pipeline 4: spurious tuples materialized agree with the loss accounting
// end to end, after mining.
TEST(Integration, SpuriousTupleAccounting) {
  Rng rng(203);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 4, 60);
  MinerOptions options;
  options.max_bag_size = 3;
  MinerReport mined = MineJoinTree(r, options).value();
  Relation spurious = SpuriousTuples(r, mined.tree).value();
  LossReport loss = ComputeLoss(r, mined.tree).value();
  EXPECT_EQ(loss.join_size_exact.value(),
            r.NumRows() + spurious.NumRows());
  // Every spurious tuple projects into the relation on every bag.
  for (uint32_t v = 0; v < mined.tree.NumNodes(); ++v) {
    Relation bag_proj = Project(r, mined.tree.bag(v));
    Relation spur_proj =
        spurious.NumRows() > 0
            ? Project(spurious, mined.tree.bag(v))
            : bag_proj;
    for (uint64_t i = 0; i < spur_proj.NumRows(); ++i) {
      EXPECT_TRUE(bag_proj.ContainsRow(spur_proj.Row(i)));
    }
  }
}

// Pipeline 5: Figure 1 in miniature — the concentration phenomenon the
// paper plots. As d grows with fixed rho_bar, the sample MI approaches
// ln(1 + rho_bar) from below.
TEST(Integration, Fig1ConcentrationShape) {
  Fig1Config config;
  config.rho_bar = 0.10;
  config.d_min = 30;
  config.d_max = 150;
  config.d_step = 60;
  config.trials = 4;
  config.seed = 17;
  std::vector<Fig1Row> rows = RunFig1(config).value();
  ASSERT_EQ(rows.size(), 3u);
  // Gap to the target shrinks monotonically in this deterministic run.
  double gap_first = rows.front().target - rows.front().mi.mean;
  double gap_last = rows.back().target - rows.back().mi.mean;
  EXPECT_GT(gap_first, gap_last);
  EXPECT_GT(gap_last, 0.0);
}

// Pipeline 6: a cyclic schema is rejected up front, the acyclic repair is
// accepted.
TEST(Integration, CyclicSchemaRejectedAcyclicRepairAccepted) {
  std::vector<AttrSet> triangle = {AttrSet{0, 1}, AttrSet{1, 2},
                                   AttrSet{0, 2}};
  EXPECT_FALSE(IsAcyclicSchema(triangle));
  std::vector<AttrSet> repaired = {AttrSet{0, 1, 2}};
  EXPECT_TRUE(IsAcyclicSchema(repaired));
  std::vector<AttrSet> repaired2 = {AttrSet{0, 1}, AttrSet{1, 2}};
  EXPECT_TRUE(IsAcyclicSchema(repaired2));
}

// Pipeline 7: factorization as compression — storage of bag projections vs
// the base relation, with integrity guarded by the loss bound.
TEST(Integration, FactorizationCompressionAccounting) {
  Rng rng(204);
  Instance planted = MakeLosslessMvdInstance(20, 20, 30, 6, 6, &rng).value();
  const Relation& r = planted.relation;
  AjdAnalysis a = AnalyzeAjd(r, planted.tree).value();
  ASSERT_TRUE(a.lossless);
  // Cells stored by the decomposition vs the original.
  uint64_t original_cells = r.NumRows() * r.NumAttrs();
  uint64_t decomposed_cells = 0;
  for (uint32_t v = 0; v < planted.tree.NumNodes(); ++v) {
    AttrSet bag = planted.tree.bag(v);
    decomposed_cells += CountDistinct(r, bag) * bag.Count();
  }
  EXPECT_LT(decomposed_cells, original_cells);
}

}  // namespace
}  // namespace ajd
