#include <gtest/gtest.h>

#include <set>

#include "random/random_relation.h"
#include "relation/ops.h"

namespace ajd {
namespace {

TEST(SampleDistinctIndices, ExactCountAndDistinct) {
  Rng rng(21);
  for (SampleStrategy strategy :
       {SampleStrategy::kFloyd, SampleStrategy::kRejection,
        SampleStrategy::kShuffle}) {
    auto result = SampleDistinctIndices(1000, 200, &rng, strategy);
    ASSERT_TRUE(result.ok());
    const auto& v = result.value();
    EXPECT_EQ(v.size(), 200u);
    std::set<uint64_t> distinct(v.begin(), v.end());
    EXPECT_EQ(distinct.size(), 200u);
    for (uint64_t x : v) EXPECT_LT(x, 1000u);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
}

TEST(SampleDistinctIndices, FullDomain) {
  Rng rng(22);
  auto result = SampleDistinctIndices(50, 50, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 50u);
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(result.value()[i], i);
}

TEST(SampleDistinctIndices, RejectsOversample) {
  Rng rng(23);
  EXPECT_EQ(SampleDistinctIndices(10, 11, &rng).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SampleDistinctIndices, ZeroIsEmpty) {
  Rng rng(24);
  EXPECT_TRUE(SampleDistinctIndices(10, 0, &rng).value().empty());
}

TEST(SampleDistinctIndices, FirstMomentUniform) {
  // Each index should be included with probability n/D.
  Rng rng(25);
  const uint64_t domain = 40, n = 10;
  std::vector<int> counts(domain, 0);
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    auto result = SampleDistinctIndices(domain, n, &rng);
    for (uint64_t x : result.value()) ++counts[x];
  }
  const double expected = trials * static_cast<double>(n) / domain;
  for (uint64_t i = 0; i < domain; ++i) {
    EXPECT_NEAR(counts[i], expected, expected * 0.12) << i;
  }
}

TEST(SampleDistinctIndices, FloydMatchesDistributionOfShuffle) {
  // Both strategies should produce uniform random subsets: compare the
  // frequency of a fixed index between strategies.
  const uint64_t domain = 20, n = 5;
  const int trials = 6000;
  int count_floyd = 0, count_shuffle = 0;
  Rng rng_a(26), rng_b(27);
  for (int t = 0; t < trials; ++t) {
    auto f =
        SampleDistinctIndices(domain, n, &rng_a, SampleStrategy::kFloyd);
    auto s =
        SampleDistinctIndices(domain, n, &rng_b, SampleStrategy::kShuffle);
    for (uint64_t x : f.value()) {
      if (x == 0) ++count_floyd;
    }
    for (uint64_t x : s.value()) {
      if (x == 0) ++count_shuffle;
    }
  }
  EXPECT_NEAR(count_floyd, count_shuffle, trials * 0.05);
}

TEST(SampleRandomRelation, SizeAndDistinctness) {
  Rng rng(28);
  RandomRelationSpec spec;
  spec.domain_sizes = {6, 7, 3};
  spec.num_tuples = 50;
  Result<Relation> r = SampleRandomRelation(spec, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumRows(), 50u);
  EXPECT_FALSE(r.value().HasDuplicateRows());
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_LT(r.value().At(i, 0), 6u);
    EXPECT_LT(r.value().At(i, 1), 7u);
    EXPECT_LT(r.value().At(i, 2), 3u);
  }
}

TEST(SampleRandomRelation, CustomNames) {
  Rng rng(29);
  RandomRelationSpec spec;
  spec.domain_sizes = {4, 4};
  spec.num_tuples = 8;
  spec.attr_names = {"A", "B"};
  Result<Relation> r = SampleRandomRelation(spec, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().attr(0).name, "A");
}

TEST(SampleRandomRelation, ValidatesSpec) {
  Rng rng(30);
  RandomRelationSpec spec;
  spec.domain_sizes = {};
  spec.num_tuples = 1;
  EXPECT_FALSE(SampleRandomRelation(spec, &rng).ok());
  spec.domain_sizes = {3, 0};
  EXPECT_FALSE(SampleRandomRelation(spec, &rng).ok());
  spec.domain_sizes = {3, 3};
  spec.num_tuples = 10;  // > 9
  EXPECT_EQ(SampleRandomRelation(spec, &rng).status().code(),
            StatusCode::kOutOfRange);
  spec.num_tuples = 0;
  EXPECT_FALSE(SampleRandomRelation(spec, &rng).ok());
}

TEST(SampleRandomRelation, HugeSparseDomain) {
  // D = 10^9; rejection/Floyd must handle this without materializing.
  Rng rng(31);
  RandomRelationSpec spec;
  spec.domain_sizes = {1000, 1000, 1000};
  spec.num_tuples = 5000;
  Result<Relation> r = SampleRandomRelation(spec, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumRows(), 5000u);
  EXPECT_FALSE(r.value().HasDuplicateRows());
}

TEST(SampleRandomRelation, DeterministicGivenSeed) {
  RandomRelationSpec spec;
  spec.domain_sizes = {9, 9};
  spec.num_tuples = 20;
  Rng a(55), b(55);
  Relation ra = SampleRandomRelation(spec, &a).value();
  Relation rb = SampleRandomRelation(spec, &b).value();
  EXPECT_TRUE(SetEquals(ra, rb));
}

TEST(SampleRandomRelation, MarginalFrequenciesRoughlyUniform) {
  // With N = D/2 over [8] x [8], each attribute value should appear in
  // about N/8 rows.
  Rng rng(56);
  RandomRelationSpec spec;
  spec.domain_sizes = {8, 8};
  spec.num_tuples = 32;
  std::vector<int> counts(8, 0);
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Relation r = SampleRandomRelation(spec, &rng).value();
    for (uint64_t i = 0; i < r.NumRows(); ++i) ++counts[r.At(i, 0)];
  }
  const double expected = trials * 32.0 / 8.0;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.08);
}

// Parameterized grid: every strategy must produce exact-size, distinct,
// in-range samples across densities from 1% to 100%.
struct SamplerGridParam {
  SampleStrategy strategy;
  uint64_t domain;
  uint64_t n;
};

class SamplerGridTest : public ::testing::TestWithParam<SamplerGridParam> {};

TEST_P(SamplerGridTest, ExactDistinctInRange) {
  const SamplerGridParam& p = GetParam();
  Rng rng(0xABCDEF ^ p.domain ^ (p.n << 20));
  for (int trial = 0; trial < 5; ++trial) {
    auto result = SampleDistinctIndices(p.domain, p.n, &rng, p.strategy);
    ASSERT_TRUE(result.ok());
    const auto& v = result.value();
    ASSERT_EQ(v.size(), p.n);
    for (size_t i = 1; i < v.size(); ++i) {
      EXPECT_LT(v[i - 1], v[i]);  // sorted implies distinct
    }
    if (!v.empty()) {
      EXPECT_LT(v.back(), p.domain);
    }
  }
}

std::vector<SamplerGridParam> MakeSamplerGrid() {
  std::vector<SamplerGridParam> grid;
  for (SampleStrategy s :
       {SampleStrategy::kFloyd, SampleStrategy::kRejection,
        SampleStrategy::kShuffle, SampleStrategy::kAuto}) {
    for (uint64_t domain : {100ull, 4096ull}) {
      for (uint64_t n : {domain / 100 + 1, domain / 4, domain / 2, domain}) {
        grid.push_back({s, domain, n});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, SamplerGridTest,
                         ::testing::ValuesIn(MakeSamplerGrid()));

}  // namespace
}  // namespace ajd
