#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/math.h"
#include "util/status.h"
#include "util/string_util.h"

namespace ajd {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCapacityExceeded),
               "CapacityExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(Math, NatsBitsRoundTrip) {
  EXPECT_NEAR(NatsToBits(kLn2), 1.0, 1e-15);
  EXPECT_NEAR(BitsToNats(1.0), kLn2, 1e-15);
  EXPECT_NEAR(BitsToNats(NatsToBits(0.73)), 0.73, 1e-12);
}

TEST(Math, XLogXAtZero) {
  EXPECT_EQ(XLogX(0.0), 0.0);
  EXPECT_NEAR(XLogX(1.0), 0.0, 1e-15);
  EXPECT_NEAR(XLogX(std::exp(1.0)), std::exp(1.0), 1e-12);
}

TEST(Math, NegTLogTIsNonNegativeOnUnitInterval) {
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    EXPECT_GE(NegTLogT(t), -1e-15) << t;
  }
}

TEST(Math, EntropySlackCMatchesFormula) {
  EXPECT_NEAR(EntropySlackC(100.0), 2.0 * std::log(100.0) / 10.0, 1e-12);
}

TEST(Math, CheckedMulDetectsOverflow) {
  EXPECT_EQ(CheckedMul(1ull << 32, 1ull << 31).value(), 1ull << 63);
  EXPECT_FALSE(CheckedMul(1ull << 32, 1ull << 32).has_value());
  EXPECT_EQ(CheckedMul(0, ~0ull).value(), 0u);
}

TEST(Math, CheckedAddDetectsOverflow) {
  EXPECT_EQ(CheckedAdd(~0ull - 1, 1).value(), ~0ull);
  EXPECT_FALSE(CheckedAdd(~0ull, 1).has_value());
}

TEST(Math, CheckedProductEmptyIsOne) {
  EXPECT_EQ(CheckedProduct({}).value(), 1u);
  EXPECT_EQ(CheckedProduct({3, 5, 7}).value(), 105u);
  EXPECT_FALSE(CheckedProduct({1ull << 60, 1ull << 60}).has_value());
}

TEST(Math, LogBinomialMatchesSmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-9);
}

TEST(MixedRadixCodec, RoundTripsAllPointsOfSmallDomain) {
  MixedRadixCodec codec({3, 4, 2});
  ASSERT_TRUE(codec.Valid());
  EXPECT_EQ(codec.Size(), 24u);
  std::vector<uint32_t> coords;
  for (uint64_t i = 0; i < codec.Size(); ++i) {
    codec.Decode(i, &coords);
    EXPECT_EQ(codec.Encode(coords), i);
  }
}

TEST(MixedRadixCodec, DecodeIsRowMajor) {
  MixedRadixCodec codec({2, 3});
  std::vector<uint32_t> coords;
  codec.Decode(0, &coords);
  EXPECT_EQ(coords, (std::vector<uint32_t>{0, 0}));
  codec.Decode(1, &coords);
  EXPECT_EQ(coords, (std::vector<uint32_t>{0, 1}));
  codec.Decode(3, &coords);
  EXPECT_EQ(coords, (std::vector<uint32_t>{1, 0}));
}

TEST(MixedRadixCodec, RejectsOverflowAndZeroDims) {
  MixedRadixCodec overflow({1ull << 60, 1ull << 60});
  EXPECT_FALSE(overflow.Valid());
  MixedRadixCodec zero({3, 0, 2});
  EXPECT_FALSE(zero.Valid());
}

TEST(Math, MeanAndStdDev) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_NEAR(Mean({1, 2, 3, 4}), 2.5, 1e-12);
  EXPECT_NEAR(SampleStdDev({2, 4, 4, 4, 5, 5, 7, 9}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(SampleStdDev({1.0}), 0.0);
}

TEST(Math, QuantileInterpolates) {
  std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_NEAR(Quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.5), 2.5, 1e-12);
}

TEST(Math, ApproxEqualBlendsRelativeAndAbsolute) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 * (1 + 1e-10), 1e-9));
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtil, JoinRoundTrip) {
  std::vector<std::string> parts = {"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, "-"), "a-bb-ccc");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtil, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \n "), "");
}

TEST(StringUtil, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64(" 7 ", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
}

}  // namespace
}  // namespace ajd
