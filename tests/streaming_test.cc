// StreamingLossMonitor (core/streaming.h) and the chunked CSV ingestion
// path (io/csv.h ReadCsvBatches / AppendCsvBatches): trajectory
// correctness against cold re-analysis, re-mine-on-drift, and file
// ingestion without materializing the whole relation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/streaming.h"
#include "engine/entropy_engine.h"
#include "info/entropy.h"
#include "info/j_measure.h"
#include "io/csv.h"
#include "jointree/join_tree.h"
#include "random/rng.h"
#include "relation/relation.h"
#include "test_util.h"

namespace ajd {
namespace {

std::vector<std::vector<uint32_t>> RandomRows(Rng* rng, uint32_t num_attrs,
                                              uint32_t domain,
                                              uint32_t count) {
  std::vector<std::vector<uint32_t>> rows(count,
                                          std::vector<uint32_t>(num_attrs));
  for (auto& row : rows) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
  }
  return rows;
}

Relation EmptyRelation(uint32_t num_attrs, uint64_t domain) {
  std::vector<uint64_t> dims(num_attrs, domain);
  RelationBuilder b(Schema::MakeSynthetic(dims).value());
  return std::move(b).Build(/*dedupe=*/false);
}

TEST(Streaming, TrajectoryMatchesColdAnalysisAtEveryEpoch) {
  Rng rng(8800);
  const uint32_t num_attrs = 4;
  Relation r = EmptyRelation(num_attrs, 3);
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, num_attrs, 3, 30)).ok());
  JoinTree tree = testing_util::RandomPathJoinTree(&rng, num_attrs);

  StreamingOptions opts;
  opts.drift_threshold = 0.0;  // fixed tree: pure monitoring
  opts.compute_exact_loss = true;
  StreamingLossMonitor monitor(&r, tree, opts);

  std::vector<std::vector<std::vector<uint32_t>>> batches;
  for (int k = 0; k < 4; ++k) {
    batches.push_back(RandomRows(&rng, num_attrs, 3, 15));
  }
  for (const auto& batch : batches) {
    Result<StreamingPoint> point = monitor.IngestBatch(batch);
    ASSERT_TRUE(point.ok());
    // Cold reference: J over a fresh relation holding the same rows.
    Relation cold = r;  // copy (same content)
    EXPECT_NEAR(point.value().j, JMeasure(cold, tree), 1e-9);
    EXPECT_NEAR(point.value().rho_lower_bound,
                std::expm1(point.value().j), 1e-12);
    ASSERT_TRUE(point.value().rho.has_value());
    Result<LossReport> loss = ComputeLoss(cold, tree);
    ASSERT_TRUE(loss.ok());
    EXPECT_NEAR(*point.value().rho, loss.value().rho, 1e-9);
    EXPECT_EQ(point.value().rows, r.NumRows());
    EXPECT_EQ(point.value().epoch, r.epoch());
    EXPECT_FALSE(point.value().remined);
  }
  EXPECT_EQ(monitor.trajectory().size(), batches.size());
  EXPECT_EQ(monitor.NumRemines(), 0u);
  // The monitoring reused the engine incrementally: one catch-up per batch.
  EXPECT_EQ(monitor.session().TotalStats().epoch_catchups, batches.size());
}

TEST(Streaming, DriftTriggersRemineAndResetsBaseline) {
  // Start on data satisfying the mined tree exactly (an FD-structured
  // relation: X0 determines everything), then append uniform noise: J of
  // the stale tree rises and the monitor must re-mine.
  Rng rng(8801);
  const uint32_t num_attrs = 3;
  Relation r = EmptyRelation(num_attrs, 6);
  std::vector<std::vector<uint32_t>> structured;
  for (uint32_t i = 0; i < 40; ++i) {
    const uint32_t x = i % 6;
    structured.push_back({x, x, x});
  }
  ASSERT_TRUE(r.AppendBatch(structured).ok());

  StreamingOptions opts;
  opts.drift_threshold = 0.05;
  opts.min_batches_between_remines = 1;
  Result<StreamingLossMonitor> made =
      StreamingLossMonitor::WithMinedTree(&r, opts);
  ASSERT_TRUE(made.ok());
  StreamingLossMonitor monitor = std::move(made).value();
  EXPECT_NEAR(monitor.BaselineJ(), 0.0, 1e-9);  // structured data: lossless

  bool remined = false;
  for (int k = 0; k < 6 && !remined; ++k) {
    Result<StreamingPoint> point =
        monitor.IngestBatch(RandomRows(&rng, num_attrs, 6, 60));
    ASSERT_TRUE(point.ok());
    remined = point.value().remined;
    if (remined) {
      ASSERT_TRUE(point.value().j_after_remine.has_value());
      // The new baseline is the re-mined tree's J, which the miner chose
      // to minimize — never worse than the drifted value.
      EXPECT_LE(*point.value().j_after_remine, point.value().j + 1e-12);
      EXPECT_NEAR(monitor.BaselineJ(), *point.value().j_after_remine,
                  1e-12);
    }
  }
  EXPECT_TRUE(remined);
  EXPECT_EQ(monitor.NumRemines(), 1u);
  // The re-mined tree is a valid tree over the schema and is what J is
  // now tracked against.
  EXPECT_NEAR(JMeasure(r, monitor.tree()), monitor.BaselineJ(), 1e-9);
}

TEST(Streaming, RelativeDriftPolicyScalesMarginWithBaselineAndFloor) {
  // Identical structured-then-noise streams under three drift configs:
  //   absolute 0.05                    -> re-mines (the control, as above);
  //   relative 0.5 with a 10-nat floor -> margin = max(0.5 * |0|, 10):
  //                                       the floor absorbs the drift, no
  //                                       re-mine;
  //   relative 0.5 with a 0.01 floor   -> margin = 0.01 near the zero
  //                                       baseline: re-mines like the
  //                                       control.
  Rng rng(8802);
  const uint32_t num_attrs = 3;
  std::vector<std::vector<uint32_t>> structured;
  for (uint32_t i = 0; i < 40; ++i) {
    const uint32_t x = i % 6;
    structured.push_back({x, x, x});
  }
  std::vector<std::vector<std::vector<uint32_t>>> batches;
  for (int k = 0; k < 6; ++k) {
    batches.push_back(RandomRows(&rng, num_attrs, 6, 60));
  }

  auto remines_under = [&](DriftPolicy policy, double floor_nats) {
    Relation r = EmptyRelation(num_attrs, 6);
    EXPECT_TRUE(r.AppendBatch(structured).ok());
    StreamingOptions opts;
    opts.drift_threshold = policy == DriftPolicy::kAbsolute ? 0.05 : 0.5;
    opts.drift_policy = policy;
    opts.drift_floor_nats = floor_nats;
    Result<StreamingLossMonitor> made =
        StreamingLossMonitor::WithMinedTree(&r, opts);
    EXPECT_TRUE(made.ok());
    StreamingLossMonitor monitor = std::move(made).value();
    EXPECT_NEAR(monitor.BaselineJ(), 0.0, 1e-9);
    for (const auto& batch : batches) {
      Result<StreamingPoint> point = monitor.IngestBatch(batch);
      EXPECT_TRUE(point.ok());
    }
    return monitor.NumRemines();
  };

  EXPECT_GT(remines_under(DriftPolicy::kAbsolute, 0.01), 0u);
  EXPECT_EQ(remines_under(DriftPolicy::kRelative, 10.0), 0u);
  EXPECT_GT(remines_under(DriftPolicy::kRelative, 0.01), 0u);
}

TEST(StreamingConcurrency, PinnedQueriesDuringIngestStayExact) {
  // Readers query the monitor's session WHILE batches are ingested: each
  // reader pins the (rows, epoch) stamp it starts with and must get the
  // cold answer at exactly that prefix, even as the monitor's own
  // J-evaluation drives catch-up concurrently. The TSan CI leg runs this.
  Rng rng(8900);
  const uint32_t num_attrs = 3;
  const uint32_t domain = 3;
  Relation r = EmptyRelation(num_attrs, domain);
  auto rows = RandomRows(&rng, num_attrs, domain, 40);
  ASSERT_TRUE(r.AppendBatch(rows).ok());
  const uint32_t kBatches = 4;
  std::vector<std::vector<std::vector<uint32_t>>> batches;
  for (uint32_t k = 0; k < kBatches; ++k) {
    batches.push_back(RandomRows(&rng, num_attrs, domain, 20));
  }
  // Cold reference at every batch boundary.
  std::unordered_map<uint64_t, std::vector<double>> expected;
  {
    auto prefix = rows;
    auto record = [&] {
      Relation cold = EmptyRelation(num_attrs, domain);
      ASSERT_TRUE(cold.AppendBatch(prefix).ok());
      std::vector<double> vals(8, 0.0);
      for (uint64_t mask = 1; mask < 8; ++mask) {
        vals[mask] = EntropyOf(cold, AttrSet::FromMask(mask));
      }
      expected[prefix.size()] = std::move(vals);
    };
    record();
    for (const auto& batch : batches) {
      prefix.insert(prefix.end(), batch.begin(), batch.end());
      record();
    }
  }

  JoinTree tree =
      JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}}).value();
  StreamingOptions opts;
  opts.drift_threshold = 0.0;  // fixed tree
  StreamingLossMonitor monitor(&r, tree, opts);
  EntropyEngine& engine = monitor.session().EngineFor(r);

  struct Obs {
    uint64_t rows;
    uint32_t mask;
    double h;
  };
  constexpr int kReaders = 2;
  std::vector<std::vector<Obs>> observed(kReaders);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&engine, &observed, &done, t] {
      Rng trng(9900 + static_cast<uint64_t>(t));
      auto& out = observed[static_cast<size_t>(t)];
      while (!done.load(std::memory_order_acquire)) {
        const EpochPin pin = engine.Pin();
        for (int q = 0; q < 2; ++q) {
          const uint32_t mask =
              1 + static_cast<uint32_t>(trng.UniformU64(7));
          out.push_back({pin.rows, mask,
                         engine.EntropyAt(AttrSet::FromMask(mask), pin)});
        }
      }
    });
  }
  for (const auto& batch : batches) {
    Result<StreamingPoint> point = monitor.IngestBatch(batch);
    ASSERT_TRUE(point.ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  size_t checked = 0;
  for (const auto& per_thread : observed) {
    for (const Obs& o : per_thread) {
      auto it = expected.find(o.rows);
      ASSERT_NE(it, expected.end()) << "pin at non-boundary rows " << o.rows;
      EXPECT_NEAR(o.h, it->second[o.mask], 1e-9)
          << "rows " << o.rows << " mask " << o.mask;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_NEAR(monitor.trajectory().back().j, JMeasure(r, tree), 1e-9);
}

TEST(Streaming, CreateValidatesUserInputInsteadOfAborting) {
  Rng rng(4410);
  Relation r = EmptyRelation(3, 3);
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 3, 3, 10)).ok());

  // Null relation: an error, not a CHECK abort.
  Result<StreamingLossMonitor> null_r = StreamingLossMonitor::Create(
      nullptr, testing_util::RandomPathJoinTree(&rng, 3));
  EXPECT_EQ(null_r.status().code(), StatusCode::kInvalidArgument);

  // Tree mentioning attributes the relation does not have.
  JoinTree wide = testing_util::RandomPathJoinTree(&rng, 5);
  Result<StreamingLossMonitor> bad_tree =
      StreamingLossMonitor::Create(&r, wide);
  EXPECT_EQ(bad_tree.status().code(), StatusCode::kInvalidArgument);

  // Valid input constructs a working monitor.
  Result<StreamingLossMonitor> good = StreamingLossMonitor::Create(
      &r, testing_util::RandomPathJoinTree(&rng, 3));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value().IngestBatch(RandomRows(&rng, 3, 3, 5)).ok());

  // Null monitor into the CSV driver: error, not abort.
  std::istringstream in("a,b\n1,2\n");
  EXPECT_EQ(IngestCsvStream(nullptr, in, 2).code(),
            StatusCode::kInvalidArgument);
}

TEST(Streaming, ObserveReportsShrunkRelationAsFailedPrecondition) {
  Rng rng(4411);
  Relation r = EmptyRelation(3, 3);
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 3, 3, 20)).ok());
  StreamingOptions opts;
  opts.drift_threshold = 0.0;
  StreamingLossMonitor monitor(
      &r, testing_util::RandomPathJoinTree(&rng, 3), opts);
  // Replace the monitored relation with a smaller one at the same address
  // — the append-only contract the monitor's caches rely on is broken, and
  // Observe must say so instead of aborting the process.
  Relation smaller = EmptyRelation(3, 3);
  ASSERT_TRUE(smaller.AppendBatch(RandomRows(&rng, 3, 3, 5)).ok());
  r = smaller;
  Result<StreamingPoint> point = monitor.Observe();
  EXPECT_EQ(point.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Streaming, PoisonBatchQuarantineKeepsTheStreamAlive) {
  Rng rng(4412);
  const uint32_t num_attrs = 3;
  Relation r = EmptyRelation(num_attrs, 3);
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, num_attrs, 3, 20)).ok());

  // A string batch against a raw-code relation fails deterministically
  // (no dictionaries to intern into) — a poison batch without failpoints.
  const std::vector<std::vector<std::string>> poison = {{"a", "b", "c"}};

  // Default policy: the error surfaces and nothing is recorded.
  StreamingOptions fail_opts;
  fail_opts.drift_threshold = 0.0;
  StreamingLossMonitor strict(
      &r, testing_util::RandomPathJoinTree(&rng, num_attrs), fail_opts);
  EXPECT_FALSE(strict.IngestStringBatch(poison).ok());
  EXPECT_EQ(strict.NumQuarantinedBatches(), 0u);
  EXPECT_TRUE(strict.trajectory().empty());

  // Skip policy: the batch quarantines, the stream keeps going, and later
  // good batches land normally.
  StreamingOptions skip_opts;
  skip_opts.drift_threshold = 0.0;
  skip_opts.batch_fault_policy = BatchFaultPolicy::kRetryThenSkip;
  skip_opts.max_batch_retries = 1;
  StreamingLossMonitor lax(
      &r, testing_util::RandomPathJoinTree(&rng, num_attrs), skip_opts);
  const uint64_t rows_before = r.NumRows();
  Result<StreamingPoint> skipped = lax.IngestStringBatch(poison);
  ASSERT_TRUE(skipped.ok());  // no-op point, stream alive
  EXPECT_EQ(skipped.value().batch_rows, 0u);
  EXPECT_EQ(lax.NumQuarantinedBatches(), 1u);
  EXPECT_EQ(lax.LastQuarantineError().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.NumRows(), rows_before);  // relation untouched (rolled back)

  Result<StreamingPoint> good =
      lax.IngestBatch(RandomRows(&rng, num_attrs, 3, 5));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().batch_rows, 5u);
  EXPECT_EQ(lax.NumQuarantinedBatches(), 1u);  // unchanged
}

TEST(Streaming, PointJsonLineIsWellFormed) {
  StreamingPoint p;
  p.epoch = 3;
  p.rows = 100;
  p.batch_rows = 10;
  p.j = 0.25;
  p.rho_lower_bound = 0.5;
  p.remined = true;
  p.j_after_remine = 0.125;
  const std::string line = p.ToJsonLine();
  EXPECT_NE(line.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(line.find("\"rows\":100"), std::string::npos);
  EXPECT_NE(line.find("\"remined\":true"), std::string::npos);
  EXPECT_NE(line.find("\"j_after_remine\":"), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

// --- Chunked CSV ----------------------------------------------------------

TEST(CsvBatches, ReadCsvBatchesChunksAndFlushesTail) {
  std::istringstream in("a,b\n1,2\n3,4\n5,6\n7,8\n9,10\n");
  std::vector<size_t> sizes;
  std::vector<std::string> seen_header;
  Status s = ReadCsvBatches(
      in, CsvOptions{}, 2,
      [&](const std::vector<std::string>& header,
          std::vector<std::vector<std::string>> batch) {
        seen_header = header;
        sizes.push_back(batch.size());
        return Status::OK();
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(seen_header, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 2, 1}));
}

TEST(CsvBatches, RaggedRowAndSinkErrorsPropagate) {
  {
    std::istringstream in("a,b\n1,2\n3\n");
    Status s = ReadCsvBatches(
        in, CsvOptions{}, 10,
        [](const std::vector<std::string>&,
           std::vector<std::vector<std::string>>) { return Status::OK(); });
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream in("a,b\n1,2\n3,4\n5,6\n");
    int calls = 0;
    Status s = ReadCsvBatches(
        in, CsvOptions{}, 1,
        [&](const std::vector<std::string>&,
            std::vector<std::vector<std::string>>) {
          return ++calls == 2 ? Status::IoError("sink full") : Status::OK();
        });
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    EXPECT_EQ(calls, 2);  // stopped at the failing chunk
  }
}

TEST(CsvBatches, AppendCsvBatchesFeedsRelationEpochs) {
  RelationBuilder b(Schema::MakeUniform({"x", "y"}, 0).value());
  b.AddStringRow({"a", "p"});
  Relation r = std::move(b).Build(/*dedupe=*/false);

  std::istringstream in("x,y\na,p\nb,q\nc,r\nd,s\n");
  CsvOptions opts;
  opts.dedupe = false;  // multiset append: keep the duplicate "a,p"
  ASSERT_TRUE(AppendCsvBatches(in, &r, opts, 2).ok());
  EXPECT_EQ(r.NumRows(), 5u);
  EXPECT_EQ(r.epoch(), 2u);  // two non-empty chunks
  EXPECT_EQ(r.dict(0)->ValueOf(r.At(1, 0)), "a");  // interned consistently
  EXPECT_EQ(r.dict(1)->ValueOf(r.At(4, 1)), "s");

  // With dedupe (the CsvOptions default), a chunk of already-present rows
  // appends nothing and bumps no epoch.
  std::istringstream dup("x,y\na,p\nb,q\n");
  ASSERT_TRUE(AppendCsvBatches(dup, &r, CsvOptions{}, 2).ok());
  EXPECT_EQ(r.NumRows(), 5u);
  EXPECT_EQ(r.epoch(), 2u);

  // Width mismatch is an error, not an abort.
  std::istringstream bad("x,y,z\n1,2,3\n");
  EXPECT_EQ(AppendCsvBatches(bad, &r, opts, 2).code(),
            StatusCode::kInvalidArgument);

  // A reordered header has matching width but would land values in the
  // wrong attributes; with a real header the names must line up.
  std::istringstream reordered("y,x\np,a\n");
  EXPECT_EQ(AppendCsvBatches(reordered, &r, CsvOptions{}, 2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(r.NumRows(), 5u);  // nothing appended
}

TEST(CsvBatches, IngestSummaryReportsCommitsAndResumeOffset) {
  RelationBuilder b(Schema::MakeUniform({"x", "y"}, 0).value());
  b.AddStringRow({"a", "p"});
  Relation r = std::move(b).Build(/*dedupe=*/false);

  CsvOptions opts;
  opts.dedupe = false;

  // Clean full-file ingest: the summary covers every batch and the resume
  // offset lands at end-of-file.
  const std::string text = "x,y\na,p\nb,q\nc,r\nd,s\ne,t\n";
  std::istringstream in(text);
  CsvIngestSummary summary;
  ASSERT_TRUE(AppendCsvBatches(in, &r, opts, 2, &summary).ok());
  EXPECT_EQ(summary.rows_read, 5u);
  EXPECT_EQ(summary.rows_appended, 5u);
  EXPECT_EQ(summary.batches_committed, 3u);  // 2 + 2 + tail of 1
  EXPECT_EQ(summary.resume_offset, static_cast<int64_t>(text.size()));

  // Mid-file failure (ragged row in the second batch): exactly the first
  // batch committed, and the resume offset points just past it.
  RelationBuilder b2(Schema::MakeUniform({"x", "y"}, 0).value());
  Relation r2 = std::move(b2).Build(/*dedupe=*/false);
  const std::string head = "x,y\na,p\nb,q\n";
  const std::string broken = head + "c\nd,s\n";
  std::istringstream in2(broken);
  CsvIngestSummary s2;
  EXPECT_EQ(AppendCsvBatches(in2, &r2, opts, 2, &s2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s2.rows_read, 2u);
  EXPECT_EQ(s2.rows_appended, 2u);
  EXPECT_EQ(s2.batches_committed, 1u);
  EXPECT_EQ(r2.NumRows(), 2u);  // the committed batch, nothing of the rest
  EXPECT_EQ(s2.resume_offset, static_cast<int64_t>(head.size()));

  // Resuming from the reported offset (headerless: the header was already
  // consumed in the first pass) ingests exactly the remaining good rows.
  const std::string fixed = head + "c,r\nd,s\n";
  std::istringstream in3(fixed);
  in3.seekg(s2.resume_offset);
  CsvOptions resume = opts;
  resume.has_header = false;
  CsvIngestSummary s3;
  ASSERT_TRUE(AppendCsvBatches(in3, &r2, resume, 2, &s3).ok());
  EXPECT_EQ(s3.rows_appended, 2u);
  EXPECT_EQ(r2.NumRows(), 4u);

  // With dedupe, rows_read counts what the committed batches carried while
  // rows_appended counts what landed.
  std::istringstream dup("x,y\na,p\nz,z\n");
  CsvIngestSummary s4;
  ASSERT_TRUE(AppendCsvBatches(dup, &r, CsvOptions{}, 10, &s4).ok());
  EXPECT_EQ(s4.rows_read, 2u);
  EXPECT_EQ(s4.rows_appended, 1u);  // "a,p" already present
}

TEST(Streaming, CsvIngestionDrivesTheMonitor) {
  // End to end: a CSV stream chunked straight into AppendStringBatch, one
  // trajectory point per chunk, values matching cold analysis.
  RelationBuilder b(Schema::MakeUniform({"x", "y", "z"}, 0).value());
  b.AddStringRow({"a", "a", "a"});
  b.AddStringRow({"b", "b", "b"});
  Relation r = std::move(b).Build(/*dedupe=*/false);
  JoinTree tree =
      JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}}).value();
  StreamingOptions opts;
  opts.drift_threshold = 0.0;
  StreamingLossMonitor monitor(&r, tree, opts);

  std::istringstream in(
      "x,y,z\n"
      "a,a,b\nb,a,a\nc,c,c\n"
      "a,b,c\nb,c,a\n");
  ASSERT_TRUE(IngestCsvStream(&monitor, in, 3).ok());
  ASSERT_EQ(monitor.trajectory().size(), 2u);
  EXPECT_EQ(monitor.trajectory()[0].rows, 5u);
  EXPECT_EQ(monitor.trajectory()[1].rows, 7u);
  EXPECT_NEAR(monitor.trajectory().back().j, JMeasure(r, tree), 1e-9);
}

}  // namespace
}  // namespace ajd
