#include <gtest/gtest.h>

#include "random/rng.h"
#include "relation/ops.h"
#include "test_util.h"

namespace ajd {
namespace {

Relation TwoColumn() {
  Schema s = Schema::Make({{"A", 3}, {"B", 3}}).value();
  return Relation::FromRows(s, {{0, 0}, {0, 1}, {1, 0}, {2, 2}}).value();
}

TEST(Project, DistinctRowsOnly) {
  Relation r = TwoColumn();
  Relation p = Project(r, AttrSet{0});
  EXPECT_EQ(p.NumRows(), 3u);  // A values {0,1,2}
  EXPECT_EQ(p.NumAttrs(), 1u);
  EXPECT_EQ(p.schema().attr(0).name, "A");
}

TEST(Project, FullSetIsIdentityOnSets) {
  Relation r = TwoColumn();
  Relation p = Project(r, AttrSet{0, 1});
  EXPECT_TRUE(SetEquals(r, p));
}

TEST(CountDistinct, MatchesProjectionSize) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 50);
    for (uint32_t mask = 1; mask < 8; ++mask) {
      AttrSet attrs = AttrSet::FromMask(mask);
      EXPECT_EQ(CountDistinct(r, attrs), Project(r, attrs).NumRows());
    }
  }
}

TEST(Select, FiltersByValue) {
  Relation r = TwoColumn();
  Relation s = Select(r, 0, 0);
  EXPECT_EQ(s.NumRows(), 2u);
  for (uint64_t i = 0; i < s.NumRows(); ++i) EXPECT_EQ(s.At(i, 0), 0u);
}

TEST(SelectWhere, ArbitraryPredicate) {
  Relation r = TwoColumn();
  Relation s = SelectWhere(r, [](const uint32_t* row) {
    return row[0] == row[1];
  });
  EXPECT_EQ(s.NumRows(), 2u);  // (0,0) and (2,2)
}

TEST(NaturalJoin, JoinsOnSharedAttribute) {
  Schema left_schema = Schema::Make({{"A", 3}, {"B", 3}}).value();
  Schema right_schema = Schema::Make({{"B", 3}, {"C", 3}}).value();
  Relation left =
      Relation::FromRows(left_schema, {{0, 0}, {1, 0}, {2, 1}}).value();
  Relation right =
      Relation::FromRows(right_schema, {{0, 5 % 3}, {1, 1}}).value();
  Relation j = NaturalJoin(left, right).value();
  // B=0 matches rows {(0,0),(1,0)} x {(0,2)}; B=1 matches {(2,1)} x {(1,1)}.
  EXPECT_EQ(j.NumRows(), 3u);
  EXPECT_EQ(j.NumAttrs(), 3u);
  EXPECT_EQ(j.schema().attr(2).name, "C");
}

TEST(NaturalJoin, NoSharedAttrsIsCrossProduct) {
  Schema ls = Schema::Make({{"A", 2}}).value();
  Schema rs = Schema::Make({{"B", 2}}).value();
  Relation left = Relation::FromRows(ls, {{0}, {1}}).value();
  Relation right = Relation::FromRows(rs, {{0}, {1}}).value();
  Relation j = NaturalJoin(left, right).value();
  EXPECT_EQ(j.NumRows(), 4u);
}

TEST(NaturalJoinSize, MatchesMaterializedJoin) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 40);
    Relation left = Project(r, AttrSet{0, 1});
    Relation right = Project(r, AttrSet{1, 2});
    Relation j = NaturalJoin(left, right).value();
    EXPECT_EQ(NaturalJoinSize(left, right).value(), j.NumRows());
  }
}

TEST(SemiJoin, KeepsMatchingRows) {
  Schema ls = Schema::Make({{"A", 3}, {"B", 3}}).value();
  Schema rs = Schema::Make({{"B", 3}}).value();
  Relation left =
      Relation::FromRows(ls, {{0, 0}, {1, 1}, {2, 2}}).value();
  Relation right = Relation::FromRows(rs, {{0}, {2}}).value();
  Relation sj = SemiJoin(left, right).value();
  EXPECT_EQ(sj.NumRows(), 2u);
}

TEST(SemiJoin, NoSharedAttrsDependsOnRightEmptiness) {
  Schema ls = Schema::Make({{"A", 2}}).value();
  Schema rs = Schema::Make({{"B", 2}}).value();
  Relation left = Relation::FromRows(ls, {{0}, {1}}).value();
  Relation right_nonempty = Relation::FromRows(rs, {{0}}).value();
  Relation right_empty = Relation::FromRows(rs, {}).value();
  EXPECT_EQ(SemiJoin(left, right_nonempty).value().NumRows(), 2u);
  EXPECT_EQ(SemiJoin(left, right_empty).value().NumRows(), 0u);
}

TEST(Difference, RemovesSharedRows) {
  Relation r = TwoColumn();
  Schema s = Schema::Make({{"A", 3}, {"B", 3}}).value();
  Relation other = Relation::FromRows(s, {{0, 0}, {9 % 3, 2}}).value();
  Relation d = Difference(r, other).value();
  EXPECT_EQ(d.NumRows(), 3u);  // removes only (0,0)
}

TEST(Difference, RequiresSameAttributes) {
  Relation r = TwoColumn();
  Schema s = Schema::Make({{"A", 3}, {"C", 3}}).value();
  Relation other = Relation::FromRows(s, {{0, 0}}).value();
  EXPECT_FALSE(Difference(r, other).ok());
}

TEST(SetEquals, OrderInsensitive) {
  Schema s = Schema::Make({{"A", 2}, {"B", 2}}).value();
  Relation r1 = Relation::FromRows(s, {{0, 0}, {1, 1}}).value();
  Relation r2 = Relation::FromRows(s, {{1, 1}, {0, 0}}).value();
  EXPECT_TRUE(SetEquals(r1, r2));
  Relation r3 = Relation::FromRows(s, {{1, 1}}).value();
  EXPECT_FALSE(SetEquals(r1, r3));
}

TEST(NaturalJoin, JoinWithSelfIsIdentity) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 30);
    Relation j = NaturalJoin(r, r).value();
    EXPECT_TRUE(SetEquals(r, j)) << "self-join must be identity on sets";
  }
}

TEST(Project, DictionaryPropagates) {
  Schema s = Schema::Make({{"City", 0}, {"Zip", 0}}).value();
  RelationBuilder b(s);
  b.AddStringRow({"Seattle", "98101"});
  b.AddStringRow({"Portland", "97201"});
  Relation r = std::move(b).Build();
  Relation p = Project(r, AttrSet{0});
  ASSERT_NE(p.dict(0), nullptr);
  EXPECT_EQ(p.RowToString(0), "(Seattle)");
}

}  // namespace
}  // namespace ajd
