#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"

namespace ajd {
namespace {

TEST(Summarize, BasicStatistics) {
  SampleSummary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.min, 1.0, 1e-12);
  EXPECT_NEAR(s.max, 4.0, 1e-12);
  EXPECT_NEAR(s.q50, 2.5, 1e-12);
}

TEST(Summarize, EmptyIsZeros) {
  SampleSummary s = Summarize({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(RunFig1, SmallSweepHasExpectedShape) {
  Fig1Config config;
  config.rho_bar = 0.10;
  config.d_min = 40;
  config.d_max = 120;
  config.d_step = 40;
  config.trials = 3;
  config.seed = 7;
  std::vector<Fig1Row> rows = RunFig1(config).value();
  ASSERT_EQ(rows.size(), 3u);
  for (const Fig1Row& row : rows) {
    EXPECT_EQ(row.mi_samples.size(), 3u);
    // N = d^2 / 1.1 within rounding.
    EXPECT_NEAR(static_cast<double>(row.n),
                static_cast<double>(row.d) * row.d / 1.1, 1.0);
    // MI must not exceed the hard cap ln(1 + rho_bar_realized): Corollary
    // 5.2.1 remark — I <= ln(dA dB / eta).
    for (double mi : row.mi_samples) {
      EXPECT_LE(mi, row.target + 1e-9);
      EXPECT_GT(mi, 0.0);
    }
  }
  // Concentration improves with d: the spread at the largest d is smaller
  // than at the smallest d.
  double spread_small = rows.front().mi.max - rows.front().mi.min;
  double spread_large = rows.back().mi.max - rows.back().mi.min;
  EXPECT_LT(spread_large, spread_small + 0.05);
}

TEST(RunFig1, DeterministicForFixedSeed) {
  Fig1Config config;
  config.d_min = 30;
  config.d_max = 30;
  config.trials = 2;
  config.seed = 99;
  auto a = RunFig1(config).value();
  auto b = RunFig1(config).value();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].mi_samples, b[0].mi_samples);
}

TEST(RunFig1, RejectsBadConfig) {
  Fig1Config config;
  config.rho_bar = -1.0;
  EXPECT_FALSE(RunFig1(config).ok());
  config = Fig1Config();
  config.d_min = 100;
  config.d_max = 50;
  EXPECT_FALSE(RunFig1(config).ok());
}

TEST(RunMvdDeviation, DeviationsMostlyWithinEps) {
  MvdDeviationConfig config;
  config.d_a = 8;
  config.d_b = 8;
  config.d_c = 2;
  config.n = 96;
  config.trials = 30;
  config.seed = 3;
  MvdDeviationResult result = RunMvdDeviation(config).value();
  EXPECT_EQ(result.deviations.size(), 30u);
  // eps* at this scale is enormous (the constants are worst-case), so all
  // trials must fall within it.
  EXPECT_EQ(result.frac_within, 1.0);
  EXPECT_GT(result.eps_star, 0.0);
}

TEST(RunMvdDeviation, LemmaFourOneSideAlwaysHolds) {
  // deviation = log1p(rho) - CMI >= ... can be negative; but CMI <=
  // log1p(rho) + eps means deviation <= eps; ALSO Lemma 4.1 gives
  // CMI <= log1p(rho): deviation >= 0 for the MVD tree. (The MVD CMI is
  // exactly J of the 2-bag schema.)
  MvdDeviationConfig config;
  config.d_a = 6;
  config.d_b = 6;
  config.d_c = 3;
  config.n = 60;
  config.trials = 25;
  config.seed = 5;
  MvdDeviationResult result = RunMvdDeviation(config).value();
  for (double dev : result.deviations) {
    EXPECT_GE(dev, -1e-8);
  }
}

TEST(RunEntropyDeviation, GapsWithinTheoremBound) {
  EntropyDeviationConfig config;
  config.d = 16;
  config.eta = 160;
  config.trials = 25;
  config.seed = 6;
  EntropyDeviationResult result = RunEntropyDeviation(config).value();
  EXPECT_EQ(result.gaps.size(), 25u);
  for (double gap : result.gaps) {
    EXPECT_GE(gap, -1e-9);  // H(A_S) <= ln d always
  }
  EXPECT_EQ(result.frac_within, 1.0);  // bound constants are generous
  EXPECT_GT(result.thm52_bound, 0.0);
}

TEST(RunEntropyDeviation, MeanGapShrinksWithDensity) {
  // More tuples per attribute value => empirical marginal closer to
  // uniform => smaller gap.
  EntropyDeviationConfig sparse;
  sparse.d = 16;
  sparse.eta = 32;
  sparse.trials = 20;
  sparse.seed = 8;
  EntropyDeviationConfig dense = sparse;
  dense.eta = 192;
  double g_sparse = RunEntropyDeviation(sparse).value().gap.mean;
  double g_dense = RunEntropyDeviation(dense).value().gap.mean;
  EXPECT_LT(g_dense, g_sparse);
}

}  // namespace
}  // namespace ajd
