#include <gtest/gtest.h>

#include <cmath>

#include "info/distribution.h"
#include "random/rng.h"
#include "test_util.h"
#include "util/math.h"

namespace ajd {
namespace {

TEST(SparseDistribution, EmpiricalIsUniformOnDistinctRows) {
  Schema s = Schema::Make({{"A", 3}, {"B", 3}}).value();
  Relation r = Relation::FromRows(s, {{0, 0}, {1, 1}, {2, 2}}).value();
  SparseDistribution d = SparseDistribution::Empirical(r, AttrSet{0, 1});
  EXPECT_EQ(d.SupportSize(), 3u);
  for (uint32_t i = 0; i < d.SupportSize(); ++i) {
    EXPECT_NEAR(d.ProbAt(i), 1.0 / 3.0, 1e-12);
  }
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
}

TEST(SparseDistribution, EmpiricalMarginalAggregates) {
  Schema s = Schema::Make({{"A", 2}, {"B", 2}}).value();
  Relation r =
      Relation::FromRows(s, {{0, 0}, {0, 1}, {1, 0}, {1, 1}}).value();
  SparseDistribution d = SparseDistribution::Empirical(r, AttrSet{0});
  EXPECT_EQ(d.SupportSize(), 2u);
  uint32_t key0[] = {0};
  EXPECT_NEAR(d.Prob(key0), 0.5, 1e-12);
}

TEST(SparseDistribution, EntropyOfUniform) {
  Schema s = Schema::Make({{"A", 4}}).value();
  Relation r = Relation::FromRows(s, {{0}, {1}, {2}, {3}}).value();
  SparseDistribution d = SparseDistribution::Empirical(r, AttrSet{0});
  EXPECT_NEAR(d.Entropy(), std::log(4.0), 1e-12);
}

TEST(SparseDistribution, EmptyAttrSetIsPointMass) {
  Schema s = Schema::Make({{"A", 2}}).value();
  Relation r = Relation::FromRows(s, {{0}, {1}}).value();
  SparseDistribution d = SparseDistribution::Empirical(r, AttrSet());
  EXPECT_EQ(d.arity(), 0u);
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
  EXPECT_NEAR(d.Entropy(), 0.0, 1e-12);
}

TEST(SparseDistribution, MarginalOfMarginalConsistency) {
  Rng rng(41);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 50);
  SparseDistribution joint =
      SparseDistribution::Empirical(r, AttrSet{0, 1, 2});
  // Marginalize the joint onto local positions {0,2} -> attrs {0,2}.
  SparseDistribution via_joint = joint.Marginal({0, 2});
  SparseDistribution direct = SparseDistribution::Empirical(r, AttrSet{0, 2});
  EXPECT_EQ(via_joint.SupportSize(), direct.SupportSize());
  for (uint32_t i = 0; i < direct.SupportSize(); ++i) {
    EXPECT_NEAR(direct.ProbAt(i), via_joint.Prob(direct.TupleAt(i)), 1e-12);
  }
}

TEST(SparseDistribution, ProbOutsideSupportIsZero) {
  Schema s = Schema::Make({{"A", 5}}).value();
  Relation r = Relation::FromRows(s, {{1}}).value();
  SparseDistribution d = SparseDistribution::Empirical(r, AttrSet{0});
  uint32_t missing[] = {4};
  EXPECT_EQ(d.Prob(missing), 0.0);
}

TEST(KlDivergence, ZeroForIdenticalDistributions) {
  Rng rng(42);
  Relation r = testing_util::RandomTestRelation(&rng, 2, 4, 30);
  SparseDistribution p = SparseDistribution::Empirical(r, AttrSet{0, 1});
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergence, NonNegativeOnRandomPairs) {
  Rng rng(43);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r1 = testing_util::RandomTestRelation(&rng, 2, 3, 40);
    Relation r2 = testing_util::RandomTestRelation(&rng, 2, 3, 40);
    SparseDistribution p = SparseDistribution::Empirical(r1, AttrSet{0, 1});
    SparseDistribution q = SparseDistribution::Empirical(r2, AttrSet{0, 1});
    double kl = KlDivergence(p, q);
    EXPECT_GE(kl, -1e-12);  // may be +inf, which also passes
  }
}

TEST(KlDivergence, InfiniteWhenSupportEscapes) {
  Schema s = Schema::Make({{"A", 3}}).value();
  Relation r1 = Relation::FromRows(s, {{0}, {1}}).value();
  Relation r2 = Relation::FromRows(s, {{0}}).value();
  SparseDistribution p = SparseDistribution::Empirical(r1, AttrSet{0});
  SparseDistribution q = SparseDistribution::Empirical(r2, AttrSet{0});
  EXPECT_TRUE(std::isinf(KlDivergence(p, q)));
  EXPECT_FALSE(std::isinf(KlDivergence(q, p)));
}

TEST(TotalVariation, BoundsAndSymmetry) {
  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r1 = testing_util::RandomTestRelation(&rng, 2, 3, 30);
    Relation r2 = testing_util::RandomTestRelation(&rng, 2, 3, 30);
    SparseDistribution p = SparseDistribution::Empirical(r1, AttrSet{0, 1});
    SparseDistribution q = SparseDistribution::Empirical(r2, AttrSet{0, 1});
    double tv = TotalVariation(p, q);
    EXPECT_GE(tv, 0.0);
    EXPECT_LE(tv, 1.0 + 1e-12);
    EXPECT_NEAR(tv, TotalVariation(q, p), 1e-12);
  }
}

TEST(TotalVariation, PinskerInequality) {
  // KL >= 2 * TV^2 (in nats). A classic sanity check tying the two
  // divergences together.
  Rng rng(45);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r1 = testing_util::RandomTestRelation(&rng, 2, 3, 60);
    Relation r2 = testing_util::RandomTestRelation(&rng, 2, 3, 60);
    SparseDistribution p = SparseDistribution::Empirical(r1, AttrSet{0, 1});
    SparseDistribution q = SparseDistribution::Empirical(r2, AttrSet{0, 1});
    double kl = KlDivergence(p, q);
    if (std::isinf(kl)) continue;
    double tv = TotalVariation(p, q);
    EXPECT_GE(kl + 1e-12, 2.0 * tv * tv);
  }
}

}  // namespace
}  // namespace ajd
