#include <gtest/gtest.h>

#include "core/worstcase.h"
#include "random/rng.h"
#include "relation/acyclic_join.h"
#include "relation/full_reducer.h"
#include "relation/ops.h"
#include "test_util.h"

namespace ajd {
namespace {

// Joins the per-node relations in DFS order (helper for cross-checking).
Relation JoinAll(const std::vector<Relation>& per_node,
                 const JoinTree& tree) {
  DfsDecomposition dec = tree.Decompose(0);
  Relation acc = per_node[dec.order[0]];
  for (size_t i = 1; i < dec.order.size(); ++i) {
    acc = NaturalJoin(acc, per_node[dec.order[i]]).value();
  }
  return acc;
}

TEST(FullReducer, PreservesJoinResult) {
  Rng rng(301);
  for (int trial = 0; trial < 40; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 35);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    ReducedProjections reduced = FullReduce(r, t).value();
    Relation join_reduced = JoinAll(reduced.per_node, t);
    Relation join_direct = MaterializeAcyclicJoin(r, t).value();
    // Compare as sets after aligning column order by name.
    std::vector<std::string> names;
    for (uint32_t a = 0; a < join_direct.NumAttrs(); ++a) {
      names.push_back(join_direct.schema().attr(a).name);
    }
    Relation aligned = ReorderColumns(join_reduced, names).value();
    EXPECT_TRUE(SetEquals(aligned, join_direct)) << t.ToString();
  }
}

TEST(FullReducer, NoDanglingTuplesRemain) {
  // Global consistency: every tuple of every reduced projection appears in
  // the projection of the final join onto that bag.
  Rng rng(302);
  for (int trial = 0; trial < 25; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    ReducedProjections reduced = FullReduce(r, t).value();
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    for (uint32_t v = 0; v < t.NumNodes(); ++v) {
      if (joined.NumRows() == 0) {
        EXPECT_EQ(reduced.per_node[v].NumRows(), 0u);
        continue;
      }
      // Project the join onto the bag's attribute names and compare sets.
      std::vector<std::string> names;
      for (uint32_t a = 0; a < reduced.per_node[v].NumAttrs(); ++a) {
        names.push_back(reduced.per_node[v].schema().attr(a).name);
      }
      Relation joined_bag = ReorderColumns(joined, names).value();
      Relation joined_bag_distinct =
          Project(joined_bag, joined_bag.schema().AllAttrs());
      EXPECT_TRUE(SetEquals(reduced.per_node[v], joined_bag_distinct))
          << "node " << v << " of " << t.ToString();
    }
  }
}

TEST(FullReducer, LosslessInstanceRemovesNothing) {
  Rng rng(303);
  Instance inst = MakeLosslessMvdInstance(8, 8, 4, 3, 3, &rng).value();
  ReducedProjections reduced = FullReduce(inst.relation, inst.tree).value();
  EXPECT_EQ(reduced.total_removed, 0u);
}

TEST(FullReducer, RemovesDanglingTuples) {
  // Two bag relations with a tuple on each side that has no join partner.
  Schema ab = Schema::Make({{"A", 4}, {"B", 4}}).value();
  Schema bc = Schema::Make({{"B", 4}, {"C", 4}}).value();
  Relation left =
      Relation::FromRows(ab, {{0, 0}, {1, 1}, {2, 3}}).value();  // B=3 dangles
  Relation right =
      Relation::FromRows(bc, {{0, 0}, {1, 2}, {2, 2}}).value();  // B=2 dangles
  JoinTree t =
      JoinTree::Make({AttrSet{0, 1}, AttrSet{1, 2}}, {{0, 1}}).value();
  ReducedProjections reduced =
      FullReduceRelations({left, right}, t).value();
  EXPECT_EQ(reduced.per_node[0].NumRows(), 2u);
  EXPECT_EQ(reduced.per_node[1].NumRows(), 2u);
  EXPECT_EQ(reduced.total_removed, 2u);
}

TEST(FullReducer, EmptyIntersectionPropagates) {
  // If one projection becomes empty, everything must become empty.
  Schema ab = Schema::Make({{"A", 4}, {"B", 4}}).value();
  Schema bc = Schema::Make({{"B", 4}, {"C", 4}}).value();
  Relation left = Relation::FromRows(ab, {{0, 0}}).value();
  Relation right = Relation::FromRows(bc, {{1, 0}}).value();  // no match
  JoinTree t =
      JoinTree::Make({AttrSet{0, 1}, AttrSet{1, 2}}, {{0, 1}}).value();
  ReducedProjections reduced =
      FullReduceRelations({left, right}, t).value();
  EXPECT_EQ(reduced.per_node[0].NumRows(), 0u);
  EXPECT_EQ(reduced.per_node[1].NumRows(), 0u);
}

TEST(FullReducer, SizeValidation) {
  Schema ab = Schema::Make({{"A", 2}, {"B", 2}}).value();
  Relation left = Relation::FromRows(ab, {{0, 0}}).value();
  JoinTree t =
      JoinTree::Make({AttrSet{0, 1}, AttrSet{1}}, {{0, 1}}).value();
  EXPECT_FALSE(FullReduceRelations({left}, t).ok());
}

TEST(FullReducer, ProjectionsFromRNeverDangleIntoEmptiness) {
  // Projections of a single relation always have at least R itself in the
  // join, so reduction never empties them.
  Rng rng(304);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 25);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    ReducedProjections reduced = FullReduce(r, t).value();
    for (const Relation& proj : reduced.per_node) {
      EXPECT_GT(proj.NumRows(), 0u);
    }
  }
}

}  // namespace
}  // namespace ajd
