#include <gtest/gtest.h>

#include <cmath>

#include "info/distribution.h"
#include "info/entropy.h"
#include "random/rng.h"
#include "test_util.h"
#include "util/math.h"

namespace ajd {
namespace {

TEST(EntropyOf, FullSetOfDuplicateFreeRelationIsLogN) {
  Rng rng(50);
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 40);
    EXPECT_NEAR(EntropyOf(r, r.schema().AllAttrs()),
                std::log(static_cast<double>(r.NumRows())), 1e-9);
  }
}

TEST(EntropyOf, EmptySetIsZero) {
  Rng rng(51);
  Relation r = testing_util::RandomTestRelation(&rng, 2, 3, 10);
  EXPECT_EQ(EntropyOf(r, AttrSet()), 0.0);
}

TEST(EntropyOf, ConstantColumnIsZero) {
  Schema s = Schema::Make({{"A", 1}, {"B", 4}}).value();
  Relation r =
      Relation::FromRows(s, {{0, 0}, {0, 1}, {0, 2}, {0, 3}}).value();
  EXPECT_NEAR(EntropyOf(r, AttrSet{0}), 0.0, 1e-12);
  EXPECT_NEAR(EntropyOf(r, AttrSet{1}), std::log(4.0), 1e-12);
}

TEST(EntropyOf, MatchesSparseDistributionEntropy) {
  Rng rng(52);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 40);
    for (uint32_t mask = 1; mask < 8; ++mask) {
      AttrSet attrs = AttrSet::FromMask(mask);
      SparseDistribution d = SparseDistribution::Empirical(r, attrs);
      EXPECT_NEAR(EntropyOf(r, attrs), d.Entropy(), 1e-9);
    }
  }
}

TEST(EntropyOf, MultisetWeighting) {
  Schema s = Schema::Make({{"A", 2}}).value();
  RelationBuilder b(s);
  b.AddRow({0});
  b.AddRow({0});
  b.AddRow({0});
  b.AddRow({1});
  Relation r = std::move(b).Build(/*dedupe=*/false);
  // P(0) = 3/4, P(1) = 1/4.
  double expected = -(0.75 * std::log(0.75) + 0.25 * std::log(0.25));
  EXPECT_NEAR(EntropyOf(r, AttrSet{0}), expected, 1e-12);
}

TEST(EntropyCalculator, CachesResults) {
  Rng rng(53);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 30);
  EntropyCalculator calc(&r);
  double h1 = calc.Entropy(AttrSet{0, 1});
  EXPECT_EQ(calc.CacheSize(), 1u);
  double h2 = calc.Entropy(AttrSet{0, 1});
  EXPECT_EQ(calc.CacheSize(), 1u);
  EXPECT_EQ(h1, h2);
}

TEST(EntropyCalculator, MonotoneInAttributeSets) {
  // H is monotone: adding attributes cannot decrease entropy.
  Rng rng(54);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
    EntropyCalculator calc(&r);
    for (uint32_t mask = 1; mask < 16; ++mask) {
      AttrSet small = AttrSet::FromMask(mask);
      AttrSet big = small.Union(AttrSet{0});
      EXPECT_LE(calc.Entropy(small), calc.Entropy(big) + 1e-9);
    }
  }
}

TEST(EntropyCalculator, Submodularity) {
  // H(A u C) + H(B u C) >= H(A u B u C) + H(C) for all A,B,C — the CMI is
  // nonnegative. The paper's Eq. (4) quantities rely on this.
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
    EntropyCalculator calc(&r);
    for (int k = 0; k < 10; ++k) {
      AttrSet a = AttrSet::FromMask(rng.UniformU64(16));
      AttrSet b = AttrSet::FromMask(rng.UniformU64(16));
      AttrSet c = AttrSet::FromMask(rng.UniformU64(16));
      EXPECT_GE(calc.ConditionalMutualInformation(a, b, c), -1e-9);
    }
  }
}

TEST(EntropyCalculator, ConditionalEntropyChainRule) {
  // H(A | C) = H(AC) - H(C).
  Rng rng(56);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 40);
  EntropyCalculator calc(&r);
  AttrSet a{0}, c{1, 2};
  EXPECT_NEAR(calc.ConditionalEntropy(a, c),
              calc.Entropy(a.Union(c)) - calc.Entropy(c), 1e-12);
}

TEST(EntropyCalculator, MutualInformationSymmetry) {
  Rng rng(57);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 50);
    EntropyCalculator calc(&r);
    AttrSet a = AttrSet::FromMask(1 + rng.UniformU64(15));
    AttrSet b = AttrSet::FromMask(1 + rng.UniformU64(15));
    EXPECT_NEAR(calc.MutualInformation(a, b), calc.MutualInformation(b, a),
                1e-12);
  }
}

TEST(EntropyCalculator, IndependentColumnsHaveZeroMi) {
  // Full cross product: A and B are independent under the empirical
  // distribution.
  Schema s = Schema::Make({{"A", 3}, {"B", 3}}).value();
  std::vector<std::vector<uint32_t>> rows;
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 0; b < 3; ++b) rows.push_back({a, b});
  }
  Relation r = Relation::FromRows(s, rows).value();
  EntropyCalculator calc(&r);
  EXPECT_NEAR(calc.MutualInformation(AttrSet{0}, AttrSet{1}), 0.0, 1e-12);
}

TEST(EntropyCalculator, PerfectlyCorrelatedColumnsHaveFullMi) {
  // Diagonal: I(A;B) = H(A) = ln N.
  Schema s = Schema::Make({{"A", 5}, {"B", 5}}).value();
  std::vector<std::vector<uint32_t>> rows;
  for (uint32_t i = 0; i < 5; ++i) rows.push_back({i, i});
  Relation r = Relation::FromRows(s, rows).value();
  EntropyCalculator calc(&r);
  EXPECT_NEAR(calc.MutualInformation(AttrSet{0}, AttrSet{1}), std::log(5.0),
              1e-12);
}

TEST(EntropyCalculator, CmiDetectsConditionalIndependence) {
  // Within each C group, A x B is a full product: I(A;B|C) = 0 even though
  // I(A;B) > 0 (groups use disjoint A values).
  Schema s = Schema::Make({{"A", 4}, {"B", 2}, {"C", 2}}).value();
  std::vector<std::vector<uint32_t>> rows;
  for (uint32_t c = 0; c < 2; ++c) {
    for (uint32_t a = 0; a < 2; ++a) {
      for (uint32_t b = 0; b < 2; ++b) rows.push_back({c * 2 + a, b, c});
    }
  }
  Relation r = Relation::FromRows(s, rows).value();
  EntropyCalculator calc(&r);
  EXPECT_NEAR(
      calc.ConditionalMutualInformation(AttrSet{0}, AttrSet{1}, AttrSet{2}),
      0.0, 1e-12);
  EXPECT_GT(calc.MutualInformation(AttrSet{0}, AttrSet{2}), 0.1);
}

}  // namespace
}  // namespace ajd
