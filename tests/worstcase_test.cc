#include <gtest/gtest.h>

#include <cmath>

#include "core/loss.h"
#include "core/worstcase.h"
#include "info/j_measure.h"
#include "random/rng.h"

namespace ajd {
namespace {

TEST(MakeDiagonalInstance, StructureIsCorrect) {
  Instance inst = MakeDiagonalInstance(5).value();
  EXPECT_EQ(inst.relation.NumRows(), 5u);
  EXPECT_EQ(inst.relation.NumAttrs(), 2u);
  EXPECT_EQ(inst.tree.NumNodes(), 2u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(inst.relation.At(i, 0), inst.relation.At(i, 1));
  }
}

TEST(MakeDiagonalInstance, RejectsZero) {
  EXPECT_FALSE(MakeDiagonalInstance(0).ok());
}

TEST(MakeDiagonalInstance, ExampleFourOneIdentities) {
  // H(A) = H(B) = H(AB) = ln N; I(A;B) = ln N; rho = N - 1.
  Instance inst = MakeDiagonalInstance(16).value();
  double j = JMeasure(inst.relation, inst.tree);
  LossReport loss = ComputeLoss(inst.relation, inst.tree).value();
  EXPECT_NEAR(j, std::log(16.0), 1e-10);
  EXPECT_NEAR(loss.rho, 15.0, 1e-10);
  EXPECT_NEAR(j, loss.log1p_rho, 1e-10);
}

TEST(MakeLosslessMvdInstance, SatisfiesAjd) {
  Rng rng(130);
  Instance inst = MakeLosslessMvdInstance(10, 8, 5, 3, 4, &rng).value();
  EXPECT_EQ(inst.relation.NumRows(), 5u * 3u * 4u);
  LossReport loss = ComputeLoss(inst.relation, inst.tree).value();
  EXPECT_EQ(loss.rho, 0.0);
  EXPECT_NEAR(JMeasure(inst.relation, inst.tree), 0.0, 1e-10);
}

TEST(MakeLosslessMvdInstance, ValidatesArguments) {
  Rng rng(131);
  EXPECT_FALSE(MakeLosslessMvdInstance(0, 5, 2, 1, 1, &rng).ok());
  EXPECT_FALSE(MakeLosslessMvdInstance(5, 5, 2, 6, 1, &rng).ok());
  EXPECT_FALSE(MakeLosslessMvdInstance(5, 5, 2, 0, 1, &rng).ok());
}

TEST(AddNoiseTuples, IncreasesSizeAndKeepsDistinct) {
  Rng rng(132);
  Instance inst = MakeLosslessMvdInstance(6, 6, 3, 2, 2, &rng).value();
  uint64_t before = inst.relation.NumRows();
  Relation noisy = AddNoiseTuples(inst.relation, 7, &rng).value();
  EXPECT_EQ(noisy.NumRows(), before + 7);
  EXPECT_FALSE(noisy.HasDuplicateRows());
}

TEST(AddNoiseTuples, NoiseMakesInstanceLossy) {
  Rng rng(133);
  Instance inst = MakeLosslessMvdInstance(8, 8, 4, 3, 3, &rng).value();
  Relation noisy = AddNoiseTuples(inst.relation, 20, &rng).value();
  double j = JMeasure(noisy, inst.tree);
  LossReport loss = ComputeLoss(noisy, inst.tree).value();
  EXPECT_GT(j, 0.0);
  EXPECT_GT(loss.rho, 0.0);
  // Lemma 4.1 still binds.
  EXPECT_LE(j, loss.log1p_rho + 1e-9);
}

TEST(AddNoiseTuples, RejectsWhenDomainFull) {
  Rng rng(134);
  Instance inst = MakeDiagonalInstance(3).value();  // domain 3x3 = 9
  EXPECT_FALSE(AddNoiseTuples(inst.relation, 7, &rng).ok());
  EXPECT_TRUE(AddNoiseTuples(inst.relation, 6, &rng).ok());
}

TEST(AddNoiseTuples, ZeroNoiseIsIdentityInSize) {
  Rng rng(135);
  Instance inst = MakeDiagonalInstance(4).value();
  Relation same = AddNoiseTuples(inst.relation, 0, &rng).value();
  EXPECT_EQ(same.NumRows(), 4u);
}

}  // namespace
}  // namespace ajd
