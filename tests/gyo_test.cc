#include <gtest/gtest.h>

#include "jointree/gyo.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(Gyo, EmptySchemaIsError) {
  EXPECT_FALSE(RunGyo({}).ok());
}

TEST(Gyo, SingleBagIsAcyclic) {
  GyoResult r = RunGyo({AttrSet{0, 1, 2}}).value();
  EXPECT_TRUE(r.acyclic);
  EXPECT_EQ(r.tree->NumNodes(), 1u);
}

TEST(Gyo, PathSchemaIsAcyclic) {
  GyoResult r =
      RunGyo({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}}).value();
  ASSERT_TRUE(r.acyclic);
  EXPECT_EQ(r.tree->NumNodes(), 3u);
  EXPECT_TRUE(r.tree->SchemaIsReduced());
}

TEST(Gyo, TriangleIsCyclic) {
  GyoResult r =
      RunGyo({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{0, 2}}).value();
  EXPECT_FALSE(r.acyclic);
  EXPECT_EQ(r.residual.size(), 3u);
  EXPECT_FALSE(r.tree.has_value());
}

TEST(Gyo, CycleOfLengthFourIsCyclic) {
  GyoResult r = RunGyo({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3},
                        AttrSet{3, 0}})
                    .value();
  EXPECT_FALSE(r.acyclic);
}

TEST(Gyo, TriangleWithCoveringBagIsAcyclic) {
  // Adding {0,1,2} makes the triangle's edges ears.
  GyoResult r = RunGyo({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{0, 2},
                        AttrSet{0, 1, 2}})
                    .value();
  EXPECT_TRUE(r.acyclic);
}

TEST(Gyo, StarSchemaIsAcyclic) {
  GyoResult r = RunGyo({AttrSet{0, 1}, AttrSet{0, 2}, AttrSet{0, 3}}).value();
  ASSERT_TRUE(r.acyclic);
  EXPECT_EQ(r.tree->NumNodes(), 3u);
}

TEST(Gyo, DisjointBagsAreAcyclic) {
  GyoResult r = RunGyo({AttrSet{0}, AttrSet{1}, AttrSet{2}}).value();
  EXPECT_TRUE(r.acyclic);
}

TEST(Gyo, ContainedBagIsAnEar) {
  GyoResult r = RunGyo({AttrSet{0, 1, 2}, AttrSet{1, 2}}).value();
  ASSERT_TRUE(r.acyclic);
  EXPECT_EQ(r.tree->NumNodes(), 2u);
}

TEST(Gyo, BuildJoinTreeFailsOnCyclic) {
  Result<JoinTree> t =
      BuildJoinTree({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{0, 2}});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Gyo, IsAcyclicSchemaConvenience) {
  EXPECT_TRUE(IsAcyclicSchema({AttrSet{0, 1}, AttrSet{1, 2}}));
  EXPECT_FALSE(
      IsAcyclicSchema({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{0, 2}}));
}

// Property: the bags of any valid join tree form an acyclic schema, and
// GYO rebuilds a tree over exactly those bags satisfying RIP.
TEST(Gyo, RoundTripsRandomJoinTreeBags) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    JoinTree t = testing_util::RandomJoinTree(&rng, 6);
    GyoResult r = RunGyo(t.bags()).value();
    ASSERT_TRUE(r.acyclic) << t.ToString();
    EXPECT_EQ(r.tree->NumNodes(), t.NumNodes());
    for (uint32_t v = 0; v < t.NumNodes(); ++v) {
      EXPECT_EQ(r.tree->bag(v), t.bag(v));
    }
  }
}

// Property: the rebuilt tree's schema equals the input schema and its
// support has m-1 MVDs.
TEST(Gyo, RebuiltTreeHasFullSupport) {
  Rng rng(32);
  for (int trial = 0; trial < 50; ++trial) {
    JoinTree t = testing_util::RandomPathJoinTree(&rng, 5);
    Result<JoinTree> rebuilt = BuildJoinTree(t.bags());
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(rebuilt.value().SupportMvds().size(), t.NumNodes() - 1);
  }
}

}  // namespace
}  // namespace ajd
