// Persistent cache tier (persist/persistent_store.h): unit round-trips,
// crash recovery, and the restart acceptance properties.
//
// Three layers of coverage:
//   1. Store unit tests — entry round-trips across reopen, replace/dedup,
//      erase, compaction, and every open-time recovery path driven by
//      EXTERNAL damage (torn manifest tails, corrupt/missing blobs, orphan
//      blobs, crashed tmp files) — these run in every build, no failpoints
//      needed.
//   2. Warm-restart equivalence — a fresh engine over a reopened store must
//      serve the fault-free cold reference to 1e-9, and its
//      reloaded-then-extended partitions must be BITWISE identical to a
//      cold chain replay over the full relation.
//   3. The crash-recovery soak (needs -DAJD_ENABLE_FAILPOINTS=ON) —
//      randomized kill-at-offset during persistence writes via the
//      torn-write simulator (persist_internal), then a clean reopen: no
//      abort, damage only ever DROPS entries, and every subsequently
//      served entropy equals the cold reference.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/column_store.h"
#include "engine/entropy_engine.h"
#include "engine/partition.h"
#include "info/entropy.h"
#include "persist/persistent_store.h"
#include "random/rng.h"
#include "relation/attr_set.h"
#include "relation/relation.h"
#include "test_util.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace ajd {
namespace {

namespace fs = std::filesystem;

/// A per-test store directory under the system temp dir, removed on exit.
struct TempDir {
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("ajd_persist_test_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            std::to_string(counter++));
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  fs::path path;
};

std::shared_ptr<PersistentCacheStore> MustOpen(const std::string& dir) {
  auto opened = PersistentCacheStore::Open(dir);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return opened.value();
}

PersistedEntryMeta ValueEntry(uint64_t fp, uint64_t mask, uint64_t rows,
                              double h) {
  PersistedEntryMeta m;
  m.fingerprint = fp;
  m.attrs = AttrSet::FromMask(mask);
  m.rows = rows;
  m.has_entropy = true;
  m.entropy = h;
  return m;
}

/// A syntactically valid stripped payload: `blocks` blocks of `width`
/// ascending row ids each (FromStripped would accept it, but the store
/// itself only checks bytes).
PartitionPayload SmallPayload(uint32_t blocks, uint32_t width) {
  PartitionPayload p;
  p.offsets.push_back(0);
  uint32_t next = 0;
  for (uint32_t b = 0; b < blocks; ++b) {
    for (uint32_t k = 0; k < width; ++k) p.rows.push_back(next++);
    p.offsets.push_back(static_cast<uint32_t>(p.rows.size()));
  }
  return p;
}

// ---------------------------------------------------------------------------
// 1. Store unit tests — external damage only, every build.
// ---------------------------------------------------------------------------

TEST(PersistStore, RoundTripsEntriesAcrossReopen) {
  TempDir dir;
  PersistedEntryMeta value = ValueEntry(0xABCD, 0x3, 100, 1.25);
  PersistedEntryMeta full = ValueEntry(0xABCD, 0x7, 100, 2.5);
  full.chain = {0, 2, 1};
  full.last_col_card = 4;
  const PartitionPayload payload = SmallPayload(3, 4);
  {
    auto store = MustOpen(dir.str());
    ASSERT_TRUE(store->Put(value, nullptr).ok());
    ASSERT_TRUE(store->Put(full, &payload).ok());
    EXPECT_EQ(store->NumEntries(), 2u);
  }  // close
  auto store = MustOpen(dir.str());
  EXPECT_EQ(store->NumEntries(), 2u);
  PersistedEntryMeta got;
  ASSERT_TRUE(store->LookupExact(0xABCD, AttrSet::FromMask(0x3), 100, &got));
  EXPECT_TRUE(got.has_entropy);
  EXPECT_FALSE(got.has_payload);
  EXPECT_DOUBLE_EQ(got.entropy, 1.25);
  ASSERT_TRUE(store->LookupExact(0xABCD, AttrSet::FromMask(0x7), 100, &got));
  EXPECT_EQ(got.chain, full.chain);
  EXPECT_EQ(got.last_col_card, 4u);
  ASSERT_TRUE(got.has_payload);
  Result<PartitionPayload> loaded = store->LoadPayload(got);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().rows, payload.rows);
  EXPECT_EQ(loaded.value().offsets, payload.offsets);
  // A different row count is a different key: prefixes never alias.
  EXPECT_FALSE(store->LookupExact(0xABCD, AttrSet::FromMask(0x3), 101, &got));
}

TEST(PersistStore, PutReplacesAndDedupsIdenticalEntries) {
  TempDir dir;
  auto store = MustOpen(dir.str());
  PersistedEntryMeta m = ValueEntry(1, 0x1, 10, 0.5);
  ASSERT_TRUE(store->Put(m, nullptr).ok());
  // Identical content again: a counted no-op, no journal churn.
  ASSERT_TRUE(store->Put(m, nullptr).ok());
  EXPECT_EQ(store->Stats().dedup_puts, 1u);
  EXPECT_EQ(store->NumEntries(), 1u);
  // Strictly more information under the same key replaces the entry.
  PersistedEntryMeta richer = m;
  richer.chain = {0};
  richer.last_col_card = 2;
  const PartitionPayload payload = SmallPayload(2, 2);
  ASSERT_TRUE(store->Put(richer, &payload).ok());
  EXPECT_EQ(store->NumEntries(), 1u);
  PersistedEntryMeta got;
  ASSERT_TRUE(store->LookupExact(1, AttrSet::FromMask(0x1), 10, &got));
  EXPECT_TRUE(got.has_payload);
  EXPECT_TRUE(got.has_entropy);
}

TEST(PersistStore, EraseRemovesEntryAndBlobDurably) {
  TempDir dir;
  const PartitionPayload payload = SmallPayload(2, 3);
  {
    auto store = MustOpen(dir.str());
    PersistedEntryMeta m = ValueEntry(7, 0x5, 50, 3.0);
    ASSERT_TRUE(store->Put(m, &payload).ok());
    PersistedEntryMeta got;
    ASSERT_TRUE(store->LookupExact(7, AttrSet::FromMask(0x5), 50, &got));
    ASSERT_TRUE(store->Erase(7, AttrSet::FromMask(0x5), 50).ok());
    EXPECT_FALSE(store->LookupExact(7, AttrSet::FromMask(0x5), 50, &got));
    // Erasing an absent entry is OK (idempotent).
    EXPECT_TRUE(store->Erase(7, AttrSet::FromMask(0x5), 50).ok());
  }
  // The erase record survives the reopen; no blob file lingers.
  auto store = MustOpen(dir.str());
  EXPECT_EQ(store->NumEntries(), 0u);
  EXPECT_TRUE(fs::is_empty(fs::path(dir.str()) / "blobs"));
}

TEST(PersistStore, TornManifestTailIsTruncatedAtOpen) {
  TempDir dir;
  {
    auto store = MustOpen(dir.str());
    for (uint64_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(store->Put(ValueEntry(k, 0x1, 10, 1.0 + k), nullptr).ok());
    }
  }
  // A crash mid-append leaves a partial record at the tail. Simulate the
  // torn bytes externally: garbage after the last intact record.
  {
    std::ofstream m(fs::path(dir.str()) / "MANIFEST",
                    std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x12, 0x34};
    m.write(torn, sizeof(torn));
  }
  auto store = MustOpen(dir.str());
  EXPECT_EQ(store->NumEntries(), 3u);  // every record before the tear replays
  EXPECT_EQ(store->Stats().torn_tail_events, 1u);
  EXPECT_GT(store->Stats().torn_tail_bytes, 0u);
  // The truncation repaired the journal in place: appends work again and
  // survive the next reopen.
  ASSERT_TRUE(store->Put(ValueEntry(9, 0x1, 10, 9.0), nullptr).ok());
  store.reset();
  EXPECT_EQ(MustOpen(dir.str())->NumEntries(), 4u);
}

TEST(PersistStore, ExternallyTruncatedManifestDropsOnlyTheTail) {
  TempDir dir;
  {
    auto store = MustOpen(dir.str());
    for (uint64_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(store->Put(ValueEntry(k, 0x1, 10, 1.0 + k), nullptr).ok());
    }
  }
  // Chop a few bytes off the last record (kill -9 mid-write never got them
  // to disk).
  const fs::path manifest = fs::path(dir.str()) / "MANIFEST";
  fs::resize_file(manifest, fs::file_size(manifest) - 3);
  auto store = MustOpen(dir.str());
  EXPECT_EQ(store->NumEntries(), 2u);
  EXPECT_EQ(store->Stats().torn_tail_events, 1u);
  PersistedEntryMeta got;
  EXPECT_TRUE(store->LookupExact(0, AttrSet::FromMask(0x1), 10, &got));
  EXPECT_TRUE(store->LookupExact(1, AttrSet::FromMask(0x1), 10, &got));
  EXPECT_FALSE(store->LookupExact(2, AttrSet::FromMask(0x1), 10, &got));
}

TEST(PersistStore, CorruptBlobQuarantinesAndDropsTheEntry) {
  TempDir dir;
  auto store = MustOpen(dir.str());
  PersistedEntryMeta m = ValueEntry(11, 0x3, 20, 1.0);
  const PartitionPayload payload = SmallPayload(4, 8);
  ASSERT_TRUE(store->Put(m, &payload).ok());
  PersistedEntryMeta got;
  ASSERT_TRUE(store->LookupExact(11, AttrSet::FromMask(0x3), 20, &got));

  // Flip one byte in the middle of the blob body.
  const fs::path blob =
      fs::path(dir.str()) / "blobs" / ("b" + std::to_string(got.blob_id) + ".blob");
  ASSERT_TRUE(fs::exists(blob));
  {
    std::fstream f(blob, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(fs::file_size(blob) / 2));
    const char x = 0x5A;
    f.write(&x, 1);
  }

  Result<PartitionPayload> loaded = store->LoadPayload(got);
  EXPECT_FALSE(loaded.ok());  // CRC caught it
  EXPECT_EQ(store->Stats().quarantined_blobs, 1u);
  EXPECT_FALSE(fs::exists(blob));
  EXPECT_TRUE(fs::exists(blob.string() + ".quarantined"));
  // The entry is gone — the next probe computes cold instead of looping on
  // the same bad blob.
  EXPECT_FALSE(store->LookupExact(11, AttrSet::FromMask(0x3), 20, &got));
  // And durably gone: the quarantine journal record survives reopen.
  store.reset();
  EXPECT_EQ(MustOpen(dir.str())->NumEntries(), 0u);
}

TEST(PersistStore, OpenRecoversMissingBlobsOrphansAndTmpFiles) {
  TempDir dir;
  uint64_t blob_id = 0;
  {
    auto store = MustOpen(dir.str());
    PersistedEntryMeta m = ValueEntry(21, 0x1, 30, 2.0);
    const PartitionPayload payload = SmallPayload(2, 2);
    ASSERT_TRUE(store->Put(m, &payload).ok());
    PersistedEntryMeta got;
    ASSERT_TRUE(store->LookupExact(21, AttrSet::FromMask(0x1), 30, &got));
    blob_id = got.blob_id;
  }
  const fs::path blobs = fs::path(dir.str()) / "blobs";
  // The referenced blob vanishes; an unreferenced one and a crashed tmp
  // appear (a crash between blob write and manifest append leaves exactly
  // such debris).
  fs::remove(blobs / ("b" + std::to_string(blob_id) + ".blob"));
  { std::ofstream(blobs / "b999.blob") << "orphan"; }
  { std::ofstream(blobs / "b1000.blob.tmp") << "crashed"; }

  auto store = MustOpen(dir.str());
  EXPECT_EQ(store->NumEntries(), 0u);
  EXPECT_EQ(store->Stats().missing_blob_entries_dropped, 1u);
  EXPECT_GE(store->Stats().orphan_blobs_removed, 1u);
  EXPECT_GE(store->Stats().tmp_files_removed, 1u);
  EXPECT_FALSE(fs::exists(blobs / "b999.blob"));
  EXPECT_FALSE(fs::exists(blobs / "b1000.blob.tmp"));
}

TEST(PersistStore, CompactRewritesJournalToLiveEntries) {
  TempDir dir;
  auto store = MustOpen(dir.str());
  // Churn: each entry erased and re-put repeatedly (the key pins the
  // value — identical re-puts alone would dedup without journal growth),
  // then half erased for good. The journal records all of it.
  for (int round = 0; round < 4; ++round) {
    for (uint64_t k = 0; k < 8; ++k) {
      if (round > 0) {
        ASSERT_TRUE(store->Erase(k, AttrSet::FromMask(0x1), 10).ok());
      }
      ASSERT_TRUE(store->Put(ValueEntry(k, 0x1, 10, 0.5 * k), nullptr).ok());
    }
  }
  for (uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(store->Erase(k, AttrSet::FromMask(0x1), 10).ok());
  }
  const fs::path manifest = fs::path(dir.str()) / "MANIFEST";
  const uintmax_t before = fs::file_size(manifest);
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(fs::file_size(manifest), before);
  EXPECT_EQ(store->Stats().compactions, 1u);
  EXPECT_EQ(store->NumEntries(), 4u);
  // The compacted journal replays to the same live set.
  store.reset();
  store = MustOpen(dir.str());
  EXPECT_EQ(store->NumEntries(), 4u);
  PersistedEntryMeta got;
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(store->LookupExact(k, AttrSet::FromMask(0x1), 10, &got), k >= 4);
    if (k >= 4) EXPECT_DOUBLE_EQ(got.entropy, 0.5 * k);
  }
}

// ---------------------------------------------------------------------------
// 2. Warm-restart equivalence — every build.
// ---------------------------------------------------------------------------

std::vector<std::vector<uint32_t>> RandomCodeRows(Rng* rng, uint32_t attrs,
                                                  uint32_t domain,
                                                  uint32_t count) {
  std::vector<std::vector<uint32_t>> rows(count,
                                          std::vector<uint32_t>(attrs));
  for (auto& row : rows) {
    for (uint32_t a = 0; a < attrs; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
  }
  return rows;
}

Relation RelationOver(const std::vector<std::vector<uint32_t>>& rows,
                      uint32_t attrs) {
  std::vector<std::string> names;
  for (uint32_t a = 0; a < attrs; ++a) names.push_back("a" + std::to_string(a));
  Result<Relation> r =
      Relation::FromRows(Schema::MakeUniform(names, 0).value(), rows, false);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

std::vector<AttrSet> AllNonEmptySubsets(uint32_t attrs) {
  std::vector<AttrSet> sets;
  for (uint64_t mask = 1; mask < (uint64_t{1} << attrs); ++mask) {
    sets.push_back(AttrSet::FromMask(mask));
  }
  return sets;
}

TEST(PersistEngine, WarmRestartServesColdAnswersWithBitwisePartitions) {
  constexpr uint32_t kAttrs = 4;
  Rng rng(20260808);
  const auto all_rows = RandomCodeRows(&rng, kAttrs, 3, 90);
  const std::vector<std::vector<uint32_t>> base_rows(all_rows.begin(),
                                                     all_rows.end() - 20);
  const std::vector<std::vector<uint32_t>> delta_rows(all_rows.end() - 20,
                                                      all_rows.end());
  const std::vector<AttrSet> sets = AllNonEmptySubsets(kAttrs);

  TempDir dir;
  // Seed process: serve everything at N0, persist, exit.
  {
    Relation seed = RelationOver(base_rows, kAttrs);
    EngineOptions opt;
    opt.persist_store = MustOpen(dir.str());
    EntropyEngine engine(&seed, opt);
    (void)engine.BatchEntropy(sets);
    ASSERT_TRUE(engine.PersistCache().ok());
  }

  // Restarted process: a FRESH relation of the same content, reopened
  // store. The constructor warm-starts from disk.
  Relation r = RelationOver(base_rows, kAttrs);
  EngineOptions opt;
  opt.persist_store = MustOpen(dir.str());
  EntropyEngine engine(&r, opt);
  EXPECT_GT(engine.Stats().persist_reloads, 0u);

  // Sweep at N0: pure disk serves, exact to the cold reference.
  for (AttrSet s : sets) {
    ASSERT_NEAR(engine.Entropy(s), EntropyOf(r, s), 1e-9)
        << "attrs=" << s.ToString();
  }

  // Grow the relation; catch-up delta-extends the reloaded partitions.
  ASSERT_TRUE(r.AppendBatch(delta_rows).ok());
  for (AttrSet s : sets) {
    ASSERT_NEAR(engine.Entropy(s), EntropyOf(r, s), 1e-9)
        << "attrs=" << s.ToString();
  }
  EXPECT_GT(engine.Stats().partitions_extended, 0u);

  // Bitwise acceptance: every reloaded-then-extended partition must equal
  // the cold replay of its recorded chain over the FULL relation — same
  // stripped rows, same block boundaries, same accumulated entropy bits.
  ColumnStore cold(&r);
  uint64_t checked = 0;
  for (AttrSet s : sets) {
    std::vector<uint32_t> chain;
    std::shared_ptr<const Partition> cached;
    if (!engine.CachedPartitionInfo(s, &chain, &cached)) continue;
    ASSERT_EQ(chain.size(), s.Count());
    Partition replay = Partition::OfColumn(cold.column(chain[0]));
    for (size_t j = 1; j < chain.size(); ++j) {
      replay = replay.RefinedBy(cold.column(chain[j]));
    }
    std::vector<uint32_t> cached_rows, cached_offsets;
    std::vector<uint32_t> replay_rows, replay_offsets;
    cached->FlattenStripped(&cached_rows, &cached_offsets);
    replay.FlattenStripped(&replay_rows, &replay_offsets);
    EXPECT_EQ(cached_rows, replay_rows) << "attrs=" << s.ToString();
    EXPECT_EQ(cached_offsets, replay_offsets) << "attrs=" << s.ToString();
    EXPECT_EQ(engine.Entropy(s), replay.EntropyNats(r.NumRows()))
        << "attrs=" << s.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(PersistEngine, ForeignStoreContentIsIgnoredNotTrusted) {
  constexpr uint32_t kAttrs = 3;
  Rng rng(42);
  const auto rows_a = RandomCodeRows(&rng, kAttrs, 3, 40);
  const auto rows_b = RandomCodeRows(&rng, kAttrs, 3, 40);
  const std::vector<AttrSet> sets = AllNonEmptySubsets(kAttrs);

  TempDir dir;
  {
    Relation a = RelationOver(rows_a, kAttrs);
    EngineOptions opt;
    opt.persist_store = MustOpen(dir.str());
    EntropyEngine engine(&a, opt);
    (void)engine.BatchEntropy(sets);
    ASSERT_TRUE(engine.PersistCache().ok());
  }
  // A DIFFERENT relation attaches to the same store: the content
  // fingerprint key must wall off every foreign entry.
  Relation b = RelationOver(rows_b, kAttrs);
  EngineOptions opt;
  opt.persist_store = MustOpen(dir.str());
  EntropyEngine engine(&b, opt);
  EXPECT_EQ(engine.Stats().persist_reloads, 0u);
  for (AttrSet s : sets) {
    ASSERT_NEAR(engine.Entropy(s), EntropyOf(b, s), 1e-9)
        << "attrs=" << s.ToString();
  }
}

// ---------------------------------------------------------------------------
// 3. Crash-recovery soak — randomized kill-at-offset, needs the failpoint
//    build (the torn-write knobs are dead otherwise).
// ---------------------------------------------------------------------------

#ifdef AJD_ENABLE_FAILPOINTS
constexpr bool kFailpointsCompiledIn = true;
#else
constexpr bool kFailpointsCompiledIn = false;
#endif

TEST(PersistCrashSoak, RandomizedKillAtOffsetAlwaysReopensClean) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built without -DAJD_ENABLE_FAILPOINTS=ON; the "
                    "torn-write crash simulator is compiled out";
  }
  constexpr uint32_t kAttrs = 4;
  constexpr int kIterations = 12;
  Rng rng(777);
  const auto all_rows = RandomCodeRows(&rng, kAttrs, 3, 80);
  const std::vector<std::vector<uint32_t>> base_rows(all_rows.begin(),
                                                     all_rows.end() - 16);
  const std::vector<std::vector<uint32_t>> delta_rows(all_rows.end() - 16,
                                                      all_rows.end());
  const std::vector<AttrSet> sets = AllNonEmptySubsets(kAttrs);

  // Fault-free cold references, at N0 and at N0+delta.
  std::vector<double> ref_base, ref_full;
  {
    Relation base = RelationOver(base_rows, kAttrs);
    Relation full = RelationOver(all_rows, kAttrs);
    for (AttrSet s : sets) {
      ref_base.push_back(EntropyOf(base, s));
      ref_full.push_back(EntropyOf(full, s));
    }
  }

  const char* kWritePoints[] = {failpoints::kPersistManifestAppend,
                                failpoints::kPersistBlobWrite,
                                failpoints::kPersistCompactRename};
  FailpointRegistry& reg = FailpointRegistry::Instance();
  TempDir dir;
  uint64_t crashes_injected = 0;
  for (int it = 0; it < kIterations; ++it) {
    // --- "Process" 1: serve, then get killed at a random byte of a
    // random persistence write. Crash simulation leaves the files exactly
    // as the kill would; dropping the objects is the process exit.
    {
      auto opened = PersistentCacheStore::Open(dir.str());
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      Relation r = RelationOver(base_rows, kAttrs);
      EngineOptions opt;
      opt.persist_store = opened.value();
      EntropyEngine engine(&r, opt);
      (void)engine.BatchEntropy(sets);

      const char* point = kWritePoints[rng.UniformU64(3)];
      persist_internal::SetTornWriteBytes(rng.NextU64());
      persist_internal::SetCrashSimulation(true);
      reg.Arm(point,
              FailpointConfig::OneShot(/*after=*/rng.UniformU64(6)));
      (void)engine.PersistCache();  // may die mid-write: that's the point
      (void)opened.value()->Compact();
      crashes_injected += reg.Triggers(point);
      reg.DisarmAll();
      persist_internal::SetCrashSimulation(false);
      persist_internal::SetTornWriteBytes(0);
    }

    // --- "Process" 2: clean reopen over whatever the crash left. Open
    // must recover (never abort), and everything served afterwards must
    // equal the fault-free cold reference — at N0 from the (possibly
    // partial) persisted state, then at N0+delta through extension.
    {
      auto opened = PersistentCacheStore::Open(dir.str());
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      Relation r = RelationOver(base_rows, kAttrs);
      EngineOptions opt;
      opt.persist_store = opened.value();
      // Keep the verify pass read-mostly: publish-down would reintroduce
      // un-injected writes between iterations.
      opt.persist_on_catchup = false;
      EntropyEngine engine(&r, opt);
      for (size_t k = 0; k < sets.size(); ++k) {
        ASSERT_NEAR(engine.Entropy(sets[k]), ref_base[k], 1e-9)
            << "iteration " << it << " attrs=" << sets[k].ToString();
      }
      ASSERT_TRUE(r.AppendBatch(delta_rows).ok());
      for (size_t k = 0; k < sets.size(); ++k) {
        ASSERT_NEAR(engine.Entropy(sets[k]), ref_full[k], 1e-9)
            << "iteration " << it << " attrs=" << sets[k].ToString();
      }
    }
  }
  // The soak must have actually crashed writes, not just run clean.
  EXPECT_GT(crashes_injected, 0u);
}

}  // namespace
}  // namespace ajd
