// Parallel-vs-serial bitwise equivalence for the sharded refinement entry
// points (engine/refine_kernels.h) and the pool-thread scratch shed.
//
// The contract under test: at ANY thread count — 1, 2, 4, hardware — the
// sharded kernels produce BYTE-identical partitions (block boundaries,
// block order, row order, delta) and BIT-identical entropies to the serial
// kernels, across kernel crossovers (counting/kMid/radix/tiny/SIMD
// selection) and both partition layouts (flat and chunked). The TSan CI
// leg runs this file.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/column_store.h"
#include "engine/partition.h"
#include "engine/refine_kernels.h"
#include "engine/worker_pool.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// A synthetic store-densified column: codes assigned in first-occurrence
// order with first_row populated, which is what the in-place extension
// paths (the chunked-layout construction below) require. skew > 0
// concentrates mass on low draws.
Column DensifiedColumn(Rng* rng, uint32_t rows, uint32_t target_card,
                       double skew) {
  std::vector<uint32_t> raw(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    if (skew == 0.0) {
      raw[i] = static_cast<uint32_t>(rng->UniformU64(target_card));
    } else {
      const double u = rng->NextDouble();
      uint32_t c =
          static_cast<uint32_t>(std::pow(u, 1.0 + skew) * target_card);
      raw[i] = c >= target_card ? target_card - 1 : c;
    }
  }
  // Densify: remap raw values to codes in first-occurrence order.
  std::vector<uint32_t> remap(target_card, UINT32_MAX);
  std::vector<uint32_t> codes(rows);
  std::vector<uint32_t> first_row;
  uint32_t next = 0;
  for (uint32_t i = 0; i < rows; ++i) {
    if (remap[raw[i]] == UINT32_MAX) {
      remap[raw[i]] = next++;
      first_row.push_back(i);
    }
    codes[i] = remap[raw[i]];
  }
  return MakeOwnedColumn(std::move(codes), next, std::move(first_row));
}

void ExpectSamePartition(const Partition& want, const Partition& got,
                         const std::string& what) {
  ASSERT_EQ(want.NumBlocks(), got.NumBlocks()) << what;
  ASSERT_EQ(want.NumStrippedRows(), got.NumStrippedRows()) << what;
  for (uint32_t b = 0; b < want.NumBlocks(); ++b) {
    ASSERT_EQ(want.BlockSize(b), got.BlockSize(b)) << what << " block " << b;
    const uint32_t* pw = want.BlockBegin(b);
    const uint32_t* pg = got.BlockBegin(b);
    for (uint32_t i = 0; i < want.BlockSize(b); ++i) {
      ASSERT_EQ(pw[i], pg[i]) << what << " block " << b << " row " << i;
    }
  }
}

// Thread counts the contract is pinned at. hardware_concurrency() may
// resolve to 1 on a constrained container — the pool still spawns
// `workers - 1` threads for the other counts, so the parallel path is
// exercised regardless of the core count.
std::vector<uint32_t> ContractThreadCounts() {
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<uint32_t> counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

// Large enough that PlanShardCount actually shards (mass must reach at
// least two shards' worth of kShardedRefineShardMass rows); low-card
// columns keep nearly every row stripped, so the view's mass tracks the
// row count closely.
constexpr uint32_t kBigRows =
    static_cast<uint32_t>(3 * kShardedRefineShardMass + 12345);

TEST(RefineParallel, ShardSplitCoversViewExactly) {
  Rng rng(9500);
  Column base_col = DensifiedColumn(&rng, 200000, 700, 0.7);
  Partition base = Partition::OfColumn(base_col);
  PartitionViewScratch vs;
  const PartitionView view = base.View(&vs);
  uint64_t blocks = 0;
  for (uint32_t r = 0; r < view.num_runs; ++r) {
    blocks += view.runs[r].num_blocks;
  }
  for (uint32_t want : {1u, 2u, 3u, 7u, 64u,
                        static_cast<uint32_t>(blocks),
                        static_cast<uint32_t>(blocks + 50)}) {
    std::vector<PartitionRun> runs;
    std::vector<PartitionView> shards;
    const uint32_t ns = SplitViewForRefine(view, want, &runs, &shards);
    ASSERT_GE(ns, 1u) << want;
    ASSERT_LE(ns, want) << want;
    // Shards concatenate back to exactly the original block sequence (same
    // row pointers, same boundaries, in order) and their masses sum to the
    // view's; every shard is non-empty.
    uint64_t mass = 0;
    uint64_t seen_blocks = 0;
    uint32_t orig_run = 0;
    uint32_t orig_block = 0;
    for (uint32_t s = 0; s < ns; ++s) {
      ASSERT_GT(shards[s].mass, 0u) << want << " shard " << s;
      uint64_t shard_mass = 0;
      for (uint32_t r = 0; r < shards[s].num_runs; ++r) {
        const PartitionRun& run = shards[s].runs[r];
        ASSERT_GT(run.num_blocks, 0u);
        for (uint32_t b = 0; b < run.num_blocks; ++b) {
          const PartitionRun& orun = view.runs[orig_run];
          ASSERT_EQ(run.rows, orun.rows);
          ASSERT_EQ(run.starts[b], orun.starts[orig_block]);
          ASSERT_EQ(run.starts[b + 1], orun.starts[orig_block + 1]);
          shard_mass += run.starts[b + 1] - run.starts[b];
          ++seen_blocks;
          if (++orig_block == orun.num_blocks) {
            ++orig_run;
            orig_block = 0;
          }
        }
      }
      ASSERT_EQ(shards[s].mass, shard_mass) << want << " shard " << s;
      mass += shard_mass;
    }
    EXPECT_EQ(mass, view.mass) << want;
    EXPECT_EQ(seen_blocks, blocks) << want;
  }
}

TEST(RefineParallel, RefinedByShardedBitIdenticalAcrossThreadCounts) {
  Rng rng(9501);
  WorkerPool pool;
  // Cardinalities straddling every kernel crossover: dense (<= 4096), kMid
  // (> 4096), and the radix-sort region (> 64Ki and >= mass/2). Skewed
  // draws produce tiny blocks (<= 4 rows) in quantity, so the tiny-block
  // and SIMD paths run inside the same sweeps.
  for (uint32_t card : {5u, 3000u, 40000u, kBigRows}) {
    for (double skew : {0.0, 2.0}) {
      Column col = DensifiedColumn(&rng, kBigRows, card, skew);
      for (uint32_t base_card : {1u, 97u}) {
        Partition base =
            base_card == 1
                ? Partition::Trivial(kBigRows)
                : Partition::OfColumn(
                      DensifiedColumn(&rng, kBigRows, base_card, 0.0));
        const std::string what = "card=" + std::to_string(card) +
                                 " skew=" + std::to_string(skew) +
                                 " base=" + std::to_string(base_card);
        PartitionDelta want_delta;
        Partition want =
            base.RefinedBy(col, RefineKernel::kAuto, &want_delta);
        const double want_h = base.RefinedEntropy(col, kBigRows);
        for (uint32_t threads : ContractThreadCounts()) {
          PartitionDelta got_delta;
          Partition got = base.RefinedBySharded(col, RefineKernel::kAuto,
                                                threads, &pool, &got_delta);
          ExpectSamePartition(want, got,
                              what + " threads=" + std::to_string(threads));
          EXPECT_EQ(want_delta.run_lengths, got_delta.run_lengths) << what;
          EXPECT_EQ(want_delta.parent_first_rows, got_delta.parent_first_rows)
              << what;
          // Entropy must agree BITWISE: the sharded reduction replays the
          // serial accumulation's operand order exactly.
          EXPECT_EQ(want_h, base.RefinedEntropySharded(
                                col, kBigRows, RefineKernel::kAuto, threads,
                                &pool))
              << what << " threads=" << threads;
        }
      }
    }
  }
}

TEST(RefineParallel, FusedShardedPathsBitIdenticalAcrossThreadCounts) {
  Rng rng(9502);
  WorkerPool pool;
  for (int trial = 0; trial < 3; ++trial) {
    const size_t k = 2 + static_cast<size_t>(rng.UniformU64(2));  // 2..3
    std::vector<Column> cols;
    std::vector<const Column*> ptrs;
    uint32_t product = 1;
    for (size_t j = 0; j < k; ++j) {
      const uint32_t card = 2 + static_cast<uint32_t>(rng.UniformU64(9));
      cols.push_back(DensifiedColumn(&rng, kBigRows, card,
                                     rng.Bernoulli(0.5) ? 0.0 : 1.5));
      product *= cols.back().cardinality;
    }
    for (const Column& c : cols) ptrs.push_back(&c);
    Partition base =
        Partition::OfColumn(DensifiedColumn(&rng, kBigRows, 11, 0.0));
    const std::string what = "trial=" + std::to_string(trial) +
                             " k=" + std::to_string(k);

    Partition want = base.RefinedByAll(ptrs.data(), k, product);
    const double want_h =
        base.RefinedEntropyAll(ptrs.data(), k, product, kBigRows);
    Partition want_fin;
    const double want_fin_h =
        k == 2 ? base.RefinedByWithEntropy(cols[0], cols[1], product,
                                           kBigRows, &want_fin)
               : 0.0;
    for (uint32_t threads : ContractThreadCounts()) {
      const std::string tag = what + " threads=" + std::to_string(threads);
      ExpectSamePartition(
          want, base.RefinedByAllSharded(ptrs.data(), k, product, threads,
                                         &pool),
          tag);
      EXPECT_EQ(want_h, base.RefinedEntropyAllSharded(ptrs.data(), k, product,
                                                      kBigRows, threads,
                                                      &pool))
          << tag;
      if (k == 2) {
        Partition fin;
        const double fin_h = base.RefinedByWithEntropySharded(
            cols[0], cols[1], product, kBigRows, threads, &pool, &fin);
        ExpectSamePartition(want_fin, fin, tag + " finale");
        EXPECT_EQ(want_fin_h, fin_h) << tag << " finale entropy";
      }
    }
  }
}

TEST(RefineParallel, ChunkedLayoutShardedMatchesSerial) {
  // The sharded split walks Partition::View(), which a chunked (in-place
  // extended) partition serves as one run per contiguous block stretch —
  // many short runs instead of flat's single run. Equivalence must hold
  // over that layout too.
  Rng rng(9503);
  WorkerPool pool;
  const uint32_t old_rows = kBigRows - kBigRows / 5;
  Column full = DensifiedColumn(&rng, kBigRows, 400, 0.5);
  // Prefix column over the first old_rows rows (dense prefix of a
  // densified column is itself densified; prefix cardinality = codes seen).
  std::vector<uint32_t> prefix_codes(full.codes.begin(),
                                     full.codes.begin() + old_rows);
  uint32_t prefix_card = 0;
  for (uint32_t c : prefix_codes) prefix_card = std::max(prefix_card, c + 1);
  std::vector<uint32_t> prefix_first(full.first_row.begin(),
                                     full.first_row.begin() + prefix_card);
  Column prefix = MakeOwnedColumn(std::move(prefix_codes), prefix_card,
                                  std::move(prefix_first));

  Partition chunked = Partition::OfColumn(prefix);
  chunked.ExtendOfColumnInPlace(full, old_rows);  // adopts chunked layout
  const Partition flat = Partition::OfColumn(full);
  ExpectSamePartition(flat, chunked, "chunked == flat baseline");

  Column refine_col = DensifiedColumn(&rng, kBigRows, 3000, 1.0);
  Partition want = flat.RefinedBy(refine_col);
  const double want_h = flat.RefinedEntropy(refine_col, kBigRows);
  for (uint32_t threads : ContractThreadCounts()) {
    const std::string tag = "chunked threads=" + std::to_string(threads);
    ExpectSamePartition(want,
                        chunked.RefinedBySharded(refine_col,
                                                 RefineKernel::kAuto, threads,
                                                 &pool),
                        tag);
    EXPECT_EQ(want_h,
              chunked.RefinedEntropySharded(refine_col, kBigRows,
                                            RefineKernel::kAuto, threads,
                                            &pool))
        << tag;
  }
}

TEST(RefineScratchShed, ShedReleasesSpikesAndKeepsKernelsCorrect) {
  Rng rng(9504);
  const uint32_t rows = 120000;
  // A near-key column under the counting kernel sizes the code-indexed
  // scratch to ~rows entries — past the 64Ki keep threshold, and (capacity
  // == cardinality) NOT a spike by ScratchGuard's relative rule, so it
  // lingers after the call. That lingering allocation is exactly what the
  // shed targets.
  Column big = DensifiedColumn(&rng, rows, rows, 0.0);
  Partition base = Partition::Trivial(rows);
  Partition want = base.RefinedBy(big, RefineKernel::kMid);
  const size_t before = RefineScratchBytes();
  EXPECT_GT(before, size_t{1} << 20) << "expected a lingering spike";
  const size_t freed = ShedOversizedRefineScratch();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(RefineScratchBytes(), before);
  // Every per-vector capacity is now at or under the keep threshold.
  EXPECT_LE(RefineScratchBytes(), size_t{17} * (size_t{1} << 16) * 8);
  // Shedding must not corrupt the scratch invariants (zeroed counters,
  // reset lists): the same refinements replay byte-identically, including
  // the fused path whose lazily-reset level arena is the delicate part.
  ExpectSamePartition(want, base.RefinedBy(big, RefineKernel::kMid),
                      "post-shed counting refinement");
  Column a = DensifiedColumn(&rng, rows, 7, 0.0);
  Column b = DensifiedColumn(&rng, rows, 5, 1.0);
  const Column* cols[2] = {&a, &b};
  Partition fused_want = base.RefinedByAll(cols, 2, 35);
  ShedOversizedRefineScratch();
  ExpectSamePartition(fused_want, base.RefinedByAll(cols, 2, 35),
                      "post-shed fused refinement");
  // Repeated shed on already-small scratch is a no-op.
  ShedOversizedRefineScratch();
  EXPECT_EQ(ShedOversizedRefineScratch(), 0u);
}

TEST(RefineScratchShed, ShedDropsFusedArenaAndResetListAsPair) {
  // Regression: ScratchGuard's spike shed swaps the fused level arena
  // (lvl_seq) away but only clear()s its lazy-reset list (lvl_touched),
  // which keeps the list's capacity. A later small fused call then
  // re-dirties a SMALL arena and leaves its last block's slots pending in
  // the still-huge list. Shedding the two buffers independently (each by
  // its own capacity) at that point would drop the pending resets while
  // KEEPING the dirty arena — the next fused call on this thread would
  // read stale first-occurrence ranks with lvl_ng == 0: silently wrong
  // leaf grouping plus an out-of-bounds counting-sort histogram in
  // ChainOrderLeaves. The shed must treat arena + reset list as a pair.
  Rng rng(9506);
  Partition base_small = Partition::Trivial(1000);
  Column a7 = DensifiedColumn(&rng, 1000, 7, 0.0);
  Column b5 = DensifiedColumn(&rng, 1000, 5, 0.0);
  const Column* small_cols[2] = {&a7, &b5};
  const uint32_t small_card = a7.cardinality * b5.cardinality;
  const Partition want = base_small.RefinedByAll(small_cols, 2, small_card);

  // 1) Spike: a single-block fused refinement whose prefix column touches
  //    > 64Ki arena slots sizes BOTH lvl_seq and lvl_touched past the keep
  //    threshold. Capacity tracks this call's own need, so ScratchGuard's
  //    relative spike rule keeps everything on the call itself.
  const uint32_t rows = 800000;
  Column wide = DensifiedColumn(&rng, rows, 70000, 0.0);
  Column narrow = DensifiedColumn(&rng, rows, 5, 0.0);
  ASSERT_GT(wide.cardinality, uint32_t{1} << 16);
  const uint64_t wide_card = uint64_t{wide.cardinality} * narrow.cardinality;
  ASSERT_LT(wide_card, uint64_t{rows} / 2) << "must stay off the sort path";
  const Column* wide_cols[2] = {&wide, &narrow};
  Partition::Trivial(rows).RefinedByAll(wide_cols, 2,
                                        static_cast<uint32_t>(wide_card));

  // 2) Small fused call: its ScratchGuard judges the spiked counters
  //    against this call's tiny cardinality and sheds — swapping lvl_seq
  //    away but only clear()ing lvl_touched (capacity survives).
  ExpectSamePartition(want,
                      base_small.RefinedByAll(small_cols, 2, small_card),
                      "post-spike small fused");

  // 3) Another small fused call re-dirties the now-small arena and leaves
  //    its block's slots PENDING in the still-oversized reset list.
  ExpectSamePartition(want,
                      base_small.RefinedByAll(small_cols, 2, small_card),
                      "re-dirty small fused");

  // 4) Park-shed, then replay: with the pair invariant respected the
  //    replay is byte-identical; an independent per-vector shed reads
  //    stale ranks here.
  ShedOversizedRefineScratch();
  ExpectSamePartition(want,
                      base_small.RefinedByAll(small_cols, 2, small_card),
                      "post-shed small fused replay");
}

TEST(RefineScratchShed, PoolThreadsShedScratchWhenParking) {
  // A batch whose tasks spike thread-local kernel scratch on the pool's
  // worker threads must not pin those allocations for the pool's
  // lifetime: each worker sheds oversized scratch when it parks after the
  // batch. A later batch observes every WORKER thread (the submitter
  // participates too but never parks, so it is exempt) back under the
  // keep threshold.
  Rng rng(9505);
  // Rows chosen so the densified cardinality (~63% of rows) clears the
  // 64Ki keep threshold: the code-indexed counter arrays must be in the
  // shed's jurisdiction, not under its keep allowance.
  const uint32_t rows = 200000;
  Column big = DensifiedColumn(&rng, rows, rows, 0.0);
  WorkerPool pool;

  // On a loaded single-core machine the submitter can drain a whole batch
  // before any worker wakes, so worker participation is forced, not hoped
  // for: every task first rendezvouses until a second thread has entered
  // the batch. The submitter's first task then blocks until a worker has
  // claimed one — the pool's per-index fetch_add handout guarantees the
  // woken worker finds work. The 60s bound only un-wedges the test on a
  // broken pool; the participation assertions below still fail then.
  struct Rendezvous {
    std::mutex mu;
    std::condition_variable cv;
    std::set<std::thread::id> seen;
    void Arrive() {
      std::unique_lock<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
      cv.notify_all();
      cv.wait_for(lock, std::chrono::seconds(60),
                  [&] { return seen.size() >= 2; });
    }
  };

  Rendezvous spike_barrier;
  std::function<void(size_t)> spike = [&](size_t) {
    spike_barrier.Arrive();
    Partition::Trivial(rows).RefinedBy(big, RefineKernel::kMid);
    // The spike is live on this thread right now (capacity tracks the
    // near-key cardinality, which ScratchGuard's relative rule keeps).
    EXPECT_GT(RefineScratchBytes(), size_t{1} << 20);
  };
  pool.Run(4, 4, spike);
  ASSERT_GE(spike_barrier.seen.size(), 2u)
      << "no worker thread ran a spike task";

  const std::thread::id submitter = std::this_thread::get_id();
  // Workers that ran the spike batch shed before re-parking (the shed
  // happens between TakeBatchShare and the park), and any worker must
  // re-park before it can claim the next batch's share — so by the time a
  // second batch's task runs on a worker thread, that thread's scratch is
  // bounded again.
  constexpr size_t kKeepBound = size_t{17} * (size_t{1} << 16) * 8;
  std::atomic<int> worker_tasks{0};
  Rendezvous check_barrier;
  std::function<void(size_t)> check = [&](size_t) {
    check_barrier.Arrive();
    if (std::this_thread::get_id() == submitter) return;
    ++worker_tasks;
    EXPECT_LE(RefineScratchBytes(), kKeepBound);
  };
  pool.Run(8, 4, check);
  EXPECT_GT(worker_tasks.load(), 0);
}

}  // namespace
}  // namespace ajd
