#include <gtest/gtest.h>

#include <cmath>

#include "info/dist_info.h"
#include "info/j_measure.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// A random joint distribution over `arity` variables with the given domain
// size per variable: a random subset of the product domain with Dirichlet-
// style random masses.
SparseDistribution RandomDistribution(Rng* rng, size_t arity,
                                      uint32_t domain, uint32_t support) {
  SparseDistribution p(arity);
  std::vector<uint32_t> tuple(arity);
  std::vector<double> masses;
  double total = 0.0;
  for (uint32_t s = 0; s < support; ++s) {
    for (size_t k = 0; k < arity; ++k) {
      tuple[k] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
    double m = -std::log(1.0 - rng->NextDouble() + 1e-12);  // Exp(1)
    p.Add(tuple.data(), m);  // duplicate tuples just accumulate
    total += m;
  }
  // Normalize by rebuilding (SparseDistribution has no scale; divide).
  SparseDistribution out(arity);
  for (uint32_t i = 0; i < p.SupportSize(); ++i) {
    out.Add(p.TupleAt(i), p.ProbAt(i) / total);
  }
  (void)masses;
  return out;
}

// ---------------------------------------------------------------------------
// Theorem 3.2 on arbitrary (non-uniform, non-empirical) distributions:
// J(T) = D_KL(P || P^T) for every P and every join tree.
// ---------------------------------------------------------------------------

class DistTheorem32Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistTheorem32Test, JEqualsKlForArbitraryDistributions) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    SparseDistribution p = RandomDistribution(&rng, 4, 3, 40);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    double j = JMeasureOfDistribution(p, t);
    DistFactorized pt(p, t);
    EXPECT_NEAR(j, pt.KlFromSource(), 1e-8) << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistTheorem32Test,
                         ::testing::Values(401, 402, 403, 404, 405));

// ---------------------------------------------------------------------------
// Lemma 3.4: P^T minimizes KL(P || Q) over tree-factorized Q. We compare
// against factorizations of OTHER random distributions.
// ---------------------------------------------------------------------------

class DistLemma34Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistLemma34Test, FactorizedSourceMinimizesKl) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    SparseDistribution p = RandomDistribution(&rng, 3, 3, 25);
    JoinTree t = testing_util::RandomJoinTree(&rng, 3);
    DistFactorized pt(p, t);
    double own = pt.KlFromSource();
    for (int other = 0; other < 5; ++other) {
      SparseDistribution q = RandomDistribution(&rng, 3, 3, 25);
      double cross = KlToFactorizedOf(p, q, t);
      EXPECT_GE(cross + 1e-8, own) << t.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistLemma34Test,
                         ::testing::Values(411, 412, 413));

TEST(DistInfo, MarginalEntropyMatchesDirectComputation) {
  Rng rng(420);
  SparseDistribution p = RandomDistribution(&rng, 3, 4, 30);
  // H over positions {0,2} by hand.
  SparseDistribution m = p.Marginal({0, 2});
  EXPECT_NEAR(MarginalEntropy(p, AttrSet{0, 2}), m.Entropy(), 1e-12);
}

TEST(DistInfo, ProductDistributionHasZeroJ) {
  // P(x,y) = P(x)P(y): the 2-bag schema {0},{1} is exact.
  SparseDistribution p(2);
  double px[2] = {0.3, 0.7};
  double py[3] = {0.2, 0.5, 0.3};
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t y = 0; y < 3; ++y) {
      uint32_t t[2] = {x, y};
      p.Add(t, px[x] * py[y]);
    }
  }
  JoinTree tree = JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 1}}).value();
  EXPECT_NEAR(JMeasureOfDistribution(p, tree), 0.0, 1e-12);
  DistFactorized pt(p, tree);
  // P^T equals P pointwise.
  for (uint32_t i = 0; i < p.SupportSize(); ++i) {
    EXPECT_NEAR(pt.Density(p.TupleAt(i)), p.ProbAt(i), 1e-12);
  }
}

TEST(DistInfo, MarkovChainFactorizesExactly) {
  // P(x,y,z) = P(x) P(y|x) P(z|y): the path {0,1},{1,2} captures it.
  Rng rng(421);
  SparseDistribution p(3);
  double px[2] = {0.4, 0.6};
  double pyx[2][2] = {{0.1, 0.9}, {0.8, 0.2}};
  double pzy[2][2] = {{0.5, 0.5}, {0.3, 0.7}};
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t y = 0; y < 2; ++y) {
      for (uint32_t z = 0; z < 2; ++z) {
        uint32_t t[3] = {x, y, z};
        p.Add(t, px[x] * pyx[x][y] * pzy[y][z]);
      }
    }
  }
  JoinTree tree =
      JoinTree::Make({AttrSet{0, 1}, AttrSet{1, 2}}, {{0, 1}}).value();
  EXPECT_NEAR(JMeasureOfDistribution(p, tree), 0.0, 1e-12);
  // The wrong conditional structure is NOT captured: {0,2},{1,2} requires
  // X _||_ Y | Z which fails for generic parameters.
  JoinTree wrong =
      JoinTree::Make({AttrSet{0, 2}, AttrSet{1, 2}}, {{0, 1}}).value();
  EXPECT_GT(JMeasureOfDistribution(p, wrong), 1e-4);
}

TEST(DistInfo, AgreesWithRelationLevelMachineryOnEmpirical) {
  Rng rng(422);
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    SparseDistribution p =
        SparseDistribution::Empirical(r, r.schema().AllAttrs());
    EXPECT_NEAR(JMeasureOfDistribution(p, t), JMeasure(r, t), 1e-9);
  }
}

}  // namespace
}  // namespace ajd
