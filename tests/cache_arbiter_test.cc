// Deterministic tests for the shared cache budget (engine/cache_arbiter.h):
// cross-engine LRU victim order, per-engine floor enforcement, exact
// discharge on engine release, and the budget=0 / budget=huge edge cases —
// first against recording fake engines (exact victim sequences), then
// through real EntropyEngines sharing one arbiter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "engine/analysis_session.h"
#include "engine/cache_arbiter.h"
#include "engine/entropy_engine.h"
#include "info/entropy.h"
#include "random/rng.h"
#include "relation/attr_set.h"
#include "test_util.h"

namespace ajd {
namespace {

// A fake engine: an identity token plus a log of the keys the arbiter told
// it to drop, in order.
struct FakeEngine {
  std::vector<AttrSet> dropped;

  void Register(CacheArbiter* arb) {
    arb->RegisterEngine(this,
                        [this](AttrSet key) { dropped.push_back(key); });
  }
};

// Charges one (key, bytes) entry.
void ChargeOne(CacheArbiter* arb, const FakeEngine* e, uint32_t key_mask,
               size_t bytes) {
  arb->Charge(e, {{AttrSet::FromMask(key_mask), bytes}});
}

TEST(CacheArbiter, EvictsGloballyColdestAcrossEngines) {
  ArbiterOptions opts;
  opts.budget_bytes = 1000;
  opts.engine_floor_bytes = 0;  // pure global LRU for this test
  CacheArbiter arb(opts);
  FakeEngine a, b;
  a.Register(&arb);
  b.Register(&arb);

  ChargeOne(&arb, &a, 1, 400);  // oldest
  ChargeOne(&arb, &a, 2, 400);
  EXPECT_EQ(arb.AccountedBytes(), 800u);
  // b's first charge overflows: the victim is a's key 1 — an entry of the
  // OTHER engine, because it is globally coldest.
  ChargeOne(&arb, &b, 3, 400);
  ASSERT_EQ(a.dropped.size(), 1u);
  EXPECT_EQ(a.dropped[0], AttrSet::FromMask(1));
  EXPECT_TRUE(b.dropped.empty());
  EXPECT_EQ(arb.AccountedBytes(), 800u);
  EXPECT_EQ(arb.EngineBytes(&a), 400u);
  EXPECT_EQ(arb.EngineBytes(&b), 400u);

  // Touch a's surviving entry: it becomes globally hottest, so the next
  // overflow must evict b's key 3 instead.
  arb.Touch(&a, AttrSet::FromMask(2));
  ChargeOne(&arb, &b, 4, 400);
  ASSERT_EQ(b.dropped.size(), 1u);
  EXPECT_EQ(b.dropped[0], AttrSet::FromMask(3));
  EXPECT_EQ(a.dropped.size(), 1u);  // unchanged
  EXPECT_EQ(arb.AccountedBytes(), 800u);
}

TEST(CacheArbiter, PerEngineFloorProtectsWarmEngines) {
  ArbiterOptions opts;
  opts.budget_bytes = 1000;
  opts.engine_floor_bytes = 300;  // < budget / 2, so no self-clamping
  CacheArbiter arb(opts);
  FakeEngine warm, hot;
  warm.Register(&arb);
  hot.Register(&arb);
  EXPECT_EQ(arb.EffectiveFloorBytes(), 300u);

  // The warm engine holds 250 bytes — below the floor, never a victim —
  // in the two globally-OLDEST entries.
  ChargeOne(&arb, &warm, 1, 125);
  ChargeOne(&arb, &warm, 2, 125);
  // The hot engine blows the budget; every eviction must come from the hot
  // engine itself even though the warm entries are colder.
  for (uint32_t k = 0; k < 6; ++k) {
    ChargeOne(&arb, &hot, 8 + k, 200);
    EXPECT_LE(arb.AccountedBytes(), opts.budget_bytes);
  }
  EXPECT_TRUE(warm.dropped.empty());
  EXPECT_EQ(arb.EngineBytes(&warm), 250u);
  // Hot evictions happened, oldest-first.
  ASSERT_GE(hot.dropped.size(), 2u);
  EXPECT_EQ(hot.dropped[0], AttrSet::FromMask(8));
  EXPECT_EQ(hot.dropped[1], AttrSet::FromMask(9));
}

TEST(CacheArbiter, FloorSelfClampsToBudgetOverEngines) {
  ArbiterOptions opts;
  opts.budget_bytes = 400;
  opts.engine_floor_bytes = 1000;  // deliberately unsatisfiable as-is
  CacheArbiter arb(opts);
  FakeEngine a, b;
  a.Register(&arb);
  b.Register(&arb);
  // Clamped to budget / num_engines, so the floors stay jointly honorable.
  EXPECT_EQ(arb.EffectiveFloorBytes(), 200u);
  ChargeOne(&arb, &a, 1, 300);
  ChargeOne(&arb, &b, 2, 300);
  // Both engines sit above the clamped floor; the coldest (a's entry) goes.
  EXPECT_LE(arb.AccountedBytes(), opts.budget_bytes);
  ASSERT_EQ(a.dropped.size(), 1u);
  EXPECT_TRUE(b.dropped.empty());
}

TEST(CacheArbiter, ReleaseEngineDischargesExactlyItsFootprint) {
  ArbiterOptions opts;
  opts.budget_bytes = size_t{1} << 30;
  CacheArbiter arb(opts);
  FakeEngine a, b;
  a.Register(&arb);
  b.Register(&arb);
  ChargeOne(&arb, &a, 1, 111);
  ChargeOne(&arb, &a, 2, 222);
  ChargeOne(&arb, &b, 3, 555);
  EXPECT_EQ(arb.AccountedBytes(), 888u);
  EXPECT_EQ(arb.NumEngines(), 2u);

  arb.ReleaseEngine(&a);
  EXPECT_EQ(arb.AccountedBytes(), 555u);
  EXPECT_EQ(arb.EngineBytes(&a), 0u);
  EXPECT_EQ(arb.NumEngines(), 1u);
  // Release invokes no evict callbacks: the engine is dropping its own
  // cache, and a second release of the same engine is a no-op.
  EXPECT_TRUE(a.dropped.empty());
  arb.ReleaseEngine(&a);
  EXPECT_EQ(arb.AccountedBytes(), 555u);
}

TEST(CacheArbiter, ZeroBudgetCachesNothingButNeverOverflows) {
  ArbiterOptions opts;
  opts.budget_bytes = 0;
  CacheArbiter arb(opts);
  FakeEngine a;
  a.Register(&arb);
  for (uint32_t k = 1; k <= 5; ++k) {
    ChargeOne(&arb, &a, k, 64 * k);
    EXPECT_EQ(arb.AccountedBytes(), 0u);  // evicted before Charge returned
  }
  EXPECT_EQ(a.dropped.size(), 5u);
  EXPECT_EQ(arb.Stats().evictions, 5u);
}

TEST(CacheArbiter, HugeBudgetNeverEvicts) {
  ArbiterOptions opts;
  opts.budget_bytes = ~size_t{0};
  CacheArbiter arb(opts);
  FakeEngine a, b;
  a.Register(&arb);
  b.Register(&arb);
  size_t total = 0;
  for (uint32_t k = 1; k <= 32; ++k) {
    ChargeOne(&arb, k % 2 ? &a : &b, k, 4096 * k);
    total += 4096 * k;
  }
  EXPECT_EQ(arb.AccountedBytes(), total);
  EXPECT_EQ(arb.Stats().evictions, 0u);
  EXPECT_TRUE(a.dropped.empty());
  EXPECT_TRUE(b.dropped.empty());
}

TEST(CacheArbiter, RechargeAfterEvictionIsAFreshEntry) {
  ArbiterOptions opts;
  opts.budget_bytes = 500;
  opts.engine_floor_bytes = 0;
  CacheArbiter arb(opts);
  FakeEngine a;
  a.Register(&arb);
  ChargeOne(&arb, &a, 1, 300);
  ChargeOne(&arb, &a, 2, 300);  // evicts key 1
  ASSERT_EQ(a.dropped.size(), 1u);
  // The engine recomputed key 1 and charges it again: accounted anew and
  // the now-coldest key 2 is the next victim.
  ChargeOne(&arb, &a, 1, 300);
  ASSERT_EQ(a.dropped.size(), 2u);
  EXPECT_EQ(a.dropped[1], AttrSet::FromMask(2));
  EXPECT_EQ(arb.AccountedBytes(), 300u);
}

// --- Through real engines ----------------------------------------------

TEST(CacheArbiter, RealEnginesShareOneBudgetAndStayCorrect) {
  Rng rng(930);
  Relation r1 = testing_util::RandomTestRelation(&rng, 5, 3, 200);
  Relation r2 = testing_util::RandomTestRelation(&rng, 5, 4, 150);

  ArbiterOptions arb_opts;
  arb_opts.budget_bytes = 8192;  // tiny: forces cross-engine eviction
  arb_opts.engine_floor_bytes = 1024;
  auto arbiter = std::make_shared<CacheArbiter>(arb_opts);
  EngineOptions opts;
  opts.cache_arbiter = arbiter;
  EntropyEngine e1(&r1, opts);
  EntropyEngine e2(&r2, opts);

  for (uint32_t m = 1; m < 32; ++m) {
    AttrSet attrs = AttrSet::FromMask(m);
    EXPECT_NEAR(e1.Entropy(attrs), EntropyOf(r1, attrs), 1e-9);
    EXPECT_LE(arbiter->AccountedBytes(), arb_opts.budget_bytes);
    EXPECT_NEAR(e2.Entropy(attrs), EntropyOf(r2, attrs), 1e-9);
    EXPECT_LE(arbiter->AccountedBytes(), arb_opts.budget_bytes);
  }
  EXPECT_GT(arbiter->Stats().evictions, 0u);
  // The arbiter's per-engine account matches each engine's own bookkeeping.
  EXPECT_EQ(arbiter->EngineBytes(&e1), e1.PartitionBytes());
  EXPECT_EQ(arbiter->EngineBytes(&e2), e2.PartitionBytes());
  EXPECT_EQ(arbiter->AccountedBytes(),
            e1.PartitionBytes() + e2.PartitionBytes());
}

TEST(CacheArbiter, SessionBudgetOverridesPerEngineBudget) {
  Rng rng(931);
  Relation r = testing_util::RandomTestRelation(&rng, 6, 3, 250);

  // The engine-level budget is tiny, but the session-level budget is huge
  // and must win: no evictions despite the engine options.
  SessionOptions opts;
  opts.engine.cache_budget_bytes = 512;
  opts.cache_budget_bytes = size_t{1} << 30;
  AnalysisSession session(opts);
  ASSERT_NE(session.cache_arbiter(), nullptr);
  EXPECT_EQ(session.cache_arbiter()->budget_bytes(), size_t{1} << 30);
  EntropyEngine& engine = session.EngineFor(r);
  for (uint32_t m = 1; m < 64; ++m) engine.Entropy(AttrSet::FromMask(m));
  EXPECT_EQ(session.TotalStats().evictions, 0u);
  EXPECT_GT(session.CacheBytes(), 512u);

  // cache_budget_bytes = 0 disables the arbiter: the per-engine private
  // budget (the legacy path) governs again.
  SessionOptions legacy;
  legacy.engine.cache_budget_bytes = 4096;
  legacy.cache_budget_bytes = 0;
  AnalysisSession private_session(legacy);
  EXPECT_EQ(private_session.cache_arbiter(), nullptr);
  EXPECT_EQ(private_session.CacheBytes(), 0u);
  EntropyEngine& private_engine = private_session.EngineFor(r);
  for (uint32_t m = 1; m < 64; ++m) {
    private_engine.Entropy(AttrSet::FromMask(m));
    EXPECT_LE(private_engine.PartitionBytes(), 4096u);
  }
  EXPECT_GT(private_session.TotalStats().evictions, 0u);
}

TEST(CacheArbiter, SessionReleaseReturnsBytesToSurvivors) {
  Rng rng(932);
  Relation keep = testing_util::RandomTestRelation(&rng, 5, 3, 200);
  Relation drop = testing_util::RandomTestRelation(&rng, 5, 3, 220);

  SessionOptions opts;
  opts.cache_budget_bytes = size_t{1} << 30;
  AnalysisSession session(opts);
  for (uint32_t m = 1; m < 32; ++m) {
    session.EngineFor(keep).Entropy(AttrSet::FromMask(m));
    session.EngineFor(drop).Entropy(AttrSet::FromMask(m));
  }
  const size_t keep_bytes = session.EngineFor(keep).PartitionBytes();
  const size_t both = session.CacheBytes();
  EXPECT_GT(keep_bytes, 0u);
  EXPECT_GT(both, keep_bytes);

  // Release discharges exactly the dropped engine's footprint.
  EXPECT_TRUE(session.Release(drop));
  EXPECT_EQ(session.CacheBytes(), keep_bytes);
  EXPECT_EQ(session.cache_arbiter()->NumEngines(), 1u);
}

// --- Intrusive-LRU victim order vs the reference linear scan --------------

// A reference model of the PRE-LRU-list arbiter: per-entry last-used ticks,
// victim = argmin tick among engines above the (self-clamped) floor. The
// intrusive list replaced the O(entries) scan per victim; this randomized
// trace pins that the victim ORDER is unchanged.
struct RefModel {
  struct Entry {
    size_t bytes = 0;
    uint64_t last_used = 0;
  };
  struct Engine {
    std::map<uint64_t, Entry> entries;  // key mask -> entry
    size_t bytes = 0;
  };
  size_t budget = 0;
  size_t floor_opt = 0;
  uint64_t tick = 0;
  size_t total = 0;
  std::map<int, Engine> engines;
  std::vector<std::pair<int, uint64_t>> victims;  // (engine id, key mask)

  size_t Floor() const {
    return engines.empty() ? floor_opt
                           : std::min(floor_opt, budget / engines.size());
  }
  void EvictToBudget() {
    const size_t floor = Floor();
    while (total > budget) {
      int victim_engine = -1;
      uint64_t victim_key = 0;
      uint64_t oldest = UINT64_MAX;
      for (auto& [id, eng] : engines) {
        if (eng.bytes <= floor) continue;
        for (auto& [key, entry] : eng.entries) {
          if (entry.last_used < oldest) {
            oldest = entry.last_used;
            victim_engine = id;
            victim_key = key;
          }
        }
      }
      if (victim_engine < 0) break;
      Engine& eng = engines[victim_engine];
      total -= eng.entries[victim_key].bytes;
      eng.bytes -= eng.entries[victim_key].bytes;
      eng.entries.erase(victim_key);
      victims.emplace_back(victim_engine, victim_key);
    }
  }
  void Charge(int id, uint64_t key, size_t bytes) {
    Engine& eng = engines[id];
    auto [it, inserted] = eng.entries.emplace(key, Entry{});
    if (inserted) {
      it->second.bytes = bytes;
      eng.bytes += bytes;
      total += bytes;
    }
    it->second.last_used = ++tick;
    EvictToBudget();
  }
  void Touch(int id, uint64_t key) {
    auto eit = engines.find(id);
    if (eit == engines.end()) return;
    auto it = eit->second.entries.find(key);
    if (it == eit->second.entries.end()) return;
    it->second.last_used = ++tick;
  }
  void Discharge(int id, uint64_t key) {
    auto eit = engines.find(id);
    if (eit == engines.end()) return;
    auto it = eit->second.entries.find(key);
    if (it == eit->second.entries.end()) return;
    eit->second.bytes -= it->second.bytes;
    total -= it->second.bytes;
    eit->second.entries.erase(it);
    // No victim record: the engine already dropped the entry itself, so no
    // evict callback runs.
  }
};

TEST(CacheArbiter, LruListVictimOrderMatchesLinearScanOnRandomTrace) {
  struct TraceEngine {
    int id = 0;
    std::vector<std::pair<int, uint64_t>>* log = nullptr;
  };
  ArbiterOptions opts;
  opts.budget_bytes = 3000;
  opts.engine_floor_bytes = 500;
  CacheArbiter arb(opts);
  RefModel ref;
  ref.budget = opts.budget_bytes;
  ref.floor_opt = opts.engine_floor_bytes;

  std::vector<std::pair<int, uint64_t>> victims;
  constexpr int kEngines = 3;
  TraceEngine engines[kEngines];
  for (int i = 0; i < kEngines; ++i) {
    engines[i] = {i, &victims};
    arb.RegisterEngine(&engines[i], [&victims, i](AttrSet key) {
      victims.emplace_back(i, key.mask());
    });
    ref.engines[i];  // register in the model too
  }

  Rng rng(4242);
  for (int op = 0; op < 600; ++op) {
    const int id = static_cast<int>(rng.UniformU64(kEngines));
    const uint64_t key = 1 + rng.UniformU64(24);
    const size_t bytes = 50 + rng.UniformU64(400);
    switch (rng.UniformU64(4)) {
      case 0:
      case 1:
        arb.Charge(&engines[id], {{AttrSet::FromMask(key), bytes}});
        ref.Charge(id, key, bytes);
        break;
      case 2:
        arb.Touch(&engines[id], AttrSet::FromMask(key));
        ref.Touch(id, key);
        break;
      default:
        // The live maintenance protocol: catch-up discharges a claimed
        // entry up front and re-charges the grown bytes at publish.
        arb.Discharge(&engines[id], {AttrSet::FromMask(key)});
        ref.Discharge(id, key);
        break;
    }
    ASSERT_EQ(arb.AccountedBytes(), ref.total) << "op " << op;
    ASSERT_EQ(victims, ref.victims) << "op " << op;
  }
  EXPECT_GT(victims.size(), 0u);  // the trace actually exercised eviction
}

TEST(CacheArbiter, DischargeThenChargeReaccountsGrownEntries) {
  // The catch-up maintenance protocol: claimed entries are discharged up
  // front and their grown bytes re-charged at publish, so the books track
  // the new sizes exactly.
  ArbiterOptions opts;
  opts.budget_bytes = 1000;
  opts.engine_floor_bytes = 0;
  CacheArbiter arb(opts);
  FakeEngine e;
  e.Register(&arb);
  ChargeOne(&arb, &e, 1, 300);
  ChargeOne(&arb, &e, 2, 300);
  arb.Discharge(&e, {AttrSet::FromMask(1)});
  EXPECT_EQ(arb.AccountedBytes(), 300u);
  EXPECT_TRUE(e.dropped.empty());  // engine-initiated: no evict callback
  // Unknown keys (already evicted, or double-discharged) are ignored.
  arb.Discharge(&e, {AttrSet::FromMask(1)});
  arb.Discharge(&e, {AttrSet::FromMask(7)});
  EXPECT_EQ(arb.AccountedBytes(), 300u);
  // Re-charging the grown entry accounts the NEW size and makes it MRU:
  // the next overflow victimizes key 2, not the freshly published key 1.
  ChargeOne(&arb, &e, 1, 400);
  EXPECT_EQ(arb.AccountedBytes(), 700u);
  ChargeOne(&arb, &e, 3, 350);
  ASSERT_GE(e.dropped.size(), 1u);
  EXPECT_EQ(e.dropped[0], AttrSet::FromMask(2));
}

}  // namespace
}  // namespace ajd
