#include <gtest/gtest.h>

#include "relation/relation.h"
#include "relation/row_hash.h"
#include "relation/schema.h"

namespace ajd {
namespace {

TEST(Schema, MakeRejectsDuplicatesAndEmptyNames) {
  EXPECT_FALSE(Schema::Make({{"A", 2}, {"A", 3}}).ok());
  EXPECT_FALSE(Schema::Make({{"", 2}}).ok());
  EXPECT_TRUE(Schema::Make({{"A", 2}, {"B", 3}}).ok());
}

TEST(Schema, MakeRejectsTooManyAttributes) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 65; ++i) attrs.push_back({"X" + std::to_string(i), 2});
  EXPECT_EQ(Schema::Make(attrs).status().code(),
            StatusCode::kCapacityExceeded);
}

TEST(Schema, FindAndPositionOf) {
  Schema s = Schema::Make({{"A", 2}, {"B", 3}}).value();
  EXPECT_EQ(s.Find("B").value(), 1u);
  EXPECT_FALSE(s.Find("C").has_value());
  EXPECT_EQ(s.PositionOf("A"), 0u);
}

TEST(Schema, SetOfNames) {
  Schema s = Schema::Make({{"A", 2}, {"B", 3}, {"C", 4}}).value();
  EXPECT_EQ(s.SetOf({"A", "C"}).value(), (AttrSet{0, 2}));
  EXPECT_FALSE(s.SetOf({"A", "Z"}).ok());
}

TEST(Schema, DomainProduct) {
  Schema s = Schema::Make({{"A", 3}, {"B", 5}, {"C", 7}}).value();
  EXPECT_EQ(s.DomainProduct(AttrSet{0, 2}).value(), 21u);
  EXPECT_EQ(s.DomainProduct(AttrSet()).value(), 1u);
}

TEST(Schema, MakeSyntheticNames) {
  Schema s = Schema::MakeSynthetic({2, 3}).value();
  EXPECT_EQ(s.attr(0).name, "X0");
  EXPECT_EQ(s.attr(1).name, "X1");
  EXPECT_EQ(s.attr(1).domain_size, 3u);
}

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  uint32_t a = d.Intern("alpha");
  uint32_t b = d.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alpha"), a);
  EXPECT_EQ(d.ValueOf(a), "alpha");
  EXPECT_EQ(d.Lookup("beta").value(), b);
  EXPECT_FALSE(d.Lookup("gamma").has_value());
  EXPECT_EQ(d.size(), 2u);
}

TEST(Dictionary, TruncateToRollsBackATailOfInterns) {
  Dictionary d;
  uint32_t a = d.Intern("alpha");
  uint32_t b = d.Intern("beta");
  d.Intern("gamma");
  d.Intern("delta");
  d.TruncateTo(2);  // roll back a failed batch's interns
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FALSE(d.Lookup("gamma").has_value());
  EXPECT_FALSE(d.Lookup("delta").has_value());
  EXPECT_EQ(d.Lookup("alpha").value(), a);
  EXPECT_EQ(d.Lookup("beta").value(), b);
  // Re-interning after rollback reuses the freed code range densely.
  EXPECT_EQ(d.Intern("epsilon"), 2u);
  d.TruncateTo(99);  // no-op beyond current size
  EXPECT_EQ(d.size(), 3u);
}

TEST(Dictionary, TruncateToZeroEmptiesCompletely) {
  Dictionary d;
  d.Intern("alpha");
  d.Intern("beta");
  d.TruncateTo(0);
  EXPECT_EQ(d.size(), 0u);
  EXPECT_FALSE(d.Lookup("alpha").has_value());
  EXPECT_FALSE(d.Lookup("beta").has_value());
  // The dictionary is reusable from scratch: dense codes start at 0 again.
  EXPECT_EQ(d.Intern("gamma"), 0u);
  EXPECT_EQ(d.Intern("alpha"), 1u);  // no ghost of the old code 0
}

TEST(Dictionary, TruncateToExactSizeIsANoOp) {
  Dictionary d;
  uint32_t a = d.Intern("alpha");
  uint32_t b = d.Intern("beta");
  d.TruncateTo(2);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Lookup("alpha").value(), a);
  EXPECT_EQ(d.Lookup("beta").value(), b);
}

TEST(Dictionary, TruncateKeepsValuesInternedBeforeTheCutoff) {
  // A failed batch re-interning EXISTING values stages no new codes for
  // them; rolling back to the pre-batch size must keep those values alive
  // under their original codes, and drop only the genuinely fresh tail.
  Dictionary d;
  uint32_t a = d.Intern("alpha");
  uint32_t b = d.Intern("beta");
  const uint32_t pre_batch_size = d.size();
  EXPECT_EQ(d.Intern("alpha"), a);   // duplicate: no new code
  uint32_t fresh = d.Intern("new");  // fresh: staged at the tail
  EXPECT_EQ(fresh, pre_batch_size);
  EXPECT_EQ(d.Intern("beta"), b);    // duplicate after the fresh one
  d.TruncateTo(pre_batch_size);      // the batch failed
  EXPECT_EQ(d.size(), pre_batch_size);
  EXPECT_EQ(d.Lookup("alpha").value(), a);
  EXPECT_EQ(d.Lookup("beta").value(), b);
  EXPECT_FALSE(d.Lookup("new").has_value());
  // A clean retry recovers the identical code assignment a never-failed
  // run would have produced.
  EXPECT_EQ(d.Intern("new"), fresh);
}

TEST(RelationBuilder, BuildsAndDedupes) {
  Schema s = Schema::Make({{"A", 0}, {"B", 0}}).value();
  RelationBuilder b(s);
  b.AddRow({0, 1});
  b.AddRow({0, 1});
  b.AddRow({1, 1});
  Relation r = std::move(b).Build(/*dedupe=*/true);
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_FALSE(r.HasDuplicateRows());
}

TEST(RelationBuilder, MultisetModeKeepsDuplicates) {
  Schema s = Schema::Make({{"A", 0}}).value();
  RelationBuilder b(s);
  b.AddRow({3});
  b.AddRow({3});
  Relation r = std::move(b).Build(/*dedupe=*/false);
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_TRUE(r.HasDuplicateRows());
  EXPECT_EQ(r.NumDistinctRows(), 1u);
}

TEST(RelationBuilder, GrowsDomainSizes) {
  Schema s = Schema::Make({{"A", 1}}).value();
  RelationBuilder b(s);
  b.AddRow({9});
  Relation r = std::move(b).Build();
  EXPECT_EQ(r.schema().attr(0).domain_size, 10u);
}

TEST(RelationBuilder, StringRowsInternAndRender) {
  Schema s = Schema::Make({{"City", 0}, {"State", 0}}).value();
  RelationBuilder b(s);
  b.AddStringRow({"Seattle", "WA"});
  b.AddStringRow({"Portland", "OR"});
  b.AddStringRow({"Seattle", "WA"});
  Relation r = std::move(b).Build();
  EXPECT_EQ(r.NumRows(), 2u);
  ASSERT_NE(r.dict(0), nullptr);
  EXPECT_EQ(r.RowToString(0), "(Seattle, WA)");
}

TEST(Relation, FromRowsChecksWidth) {
  Schema s = Schema::Make({{"A", 2}, {"B", 2}}).value();
  EXPECT_FALSE(Relation::FromRows(s, {{0}}).ok());
  Result<Relation> r = Relation::FromRows(s, {{0, 1}, {1, 0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumRows(), 2u);
}

TEST(Relation, ContainsRow) {
  Schema s = Schema::Make({{"A", 3}, {"B", 3}}).value();
  Relation r = Relation::FromRows(s, {{0, 1}, {2, 2}}).value();
  uint32_t present[] = {0, 1};
  uint32_t absent[] = {1, 0};
  EXPECT_TRUE(r.ContainsRow(present));
  EXPECT_FALSE(r.ContainsRow(absent));
}

TEST(Relation, ToStringTruncates) {
  Schema s = Schema::Make({{"A", 10}}).value();
  std::vector<std::vector<uint32_t>> rows;
  for (uint32_t i = 0; i < 10; ++i) rows.push_back({i});
  Relation r = Relation::FromRows(s, rows).value();
  std::string text = r.ToString(3);
  EXPECT_NE(text.find("(7 more)"), std::string::npos);
}

TEST(TupleCounter, CountsAndDenseIndexes) {
  TupleCounter c(2);
  uint32_t t1[] = {1, 2};
  uint32_t t2[] = {3, 4};
  EXPECT_EQ(c.Add(t1), 0u);
  EXPECT_EQ(c.Add(t2), 1u);
  EXPECT_EQ(c.Add(t1), 0u);
  EXPECT_EQ(c.NumDistinct(), 2u);
  EXPECT_EQ(c.CountAt(0), 2u);
  EXPECT_EQ(c.CountAt(1), 1u);
  EXPECT_EQ(c.TotalCount(), 3u);
  EXPECT_EQ(c.Find(t2), 1u);
  uint32_t t3[] = {9, 9};
  EXPECT_EQ(c.Find(t3), UINT32_MAX);
}

TEST(TupleCounter, SurvivesGrowth) {
  TupleCounter c(1, 2);
  for (uint32_t i = 0; i < 10000; ++i) {
    uint32_t t[] = {i};
    EXPECT_EQ(c.Add(t), i);
  }
  EXPECT_EQ(c.NumDistinct(), 10000u);
  for (uint32_t i = 0; i < 10000; ++i) {
    uint32_t t[] = {i};
    EXPECT_EQ(c.Find(t), i);
    EXPECT_EQ(c.TupleAt(i)[0], i);
  }
}

TEST(TupleCounter, WeightedAdds) {
  TupleCounter c(1);
  uint32_t t[] = {5};
  c.AddWeighted(t, 7);
  c.AddWeighted(t, 3);
  EXPECT_EQ(c.CountAt(0), 10u);
  EXPECT_EQ(c.TotalCount(), 10u);
}

}  // namespace
}  // namespace ajd
