// Shared helpers for randomized/property tests: random relations and random
// join trees with validity guaranteed by construction.
#ifndef AJD_TESTS_TEST_UTIL_H_
#define AJD_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "jointree/join_tree.h"
#include "random/rng.h"
#include "relation/relation.h"
#include "util/check.h"

namespace ajd {
namespace testing_util {

/// A random relation over `num_attrs` attributes with per-attribute domain
/// `domain`, built from `rows` draws WITH replacement and then deduplicated
/// (so N <= rows). Always non-empty for rows >= 1.
inline Relation RandomTestRelation(Rng* rng, uint32_t num_attrs,
                                   uint32_t domain, uint32_t rows) {
  AJD_CHECK(num_attrs >= 1 && domain >= 1 && rows >= 1);
  std::vector<uint64_t> dims(num_attrs, domain);
  Result<Schema> schema = Schema::MakeSynthetic(dims);
  AJD_CHECK(schema.ok());
  RelationBuilder b(std::move(schema).value());
  std::vector<uint32_t> row(num_attrs);
  for (uint32_t i = 0; i < rows; ++i) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
    b.AddRow(row);
  }
  return std::move(b).Build(/*dedupe=*/true);
}

/// A random PATH join tree over attributes {0..num_attrs-1}: each attribute
/// is assigned a random interval of the m bag slots, which guarantees the
/// running intersection property. All bags are non-empty and every
/// attribute is covered. m is in [2, max_bags].
inline JoinTree RandomPathJoinTree(Rng* rng, uint32_t num_attrs,
                                   uint32_t max_bags = 4) {
  AJD_CHECK(num_attrs >= 2 && max_bags >= 2);
  while (true) {
    uint32_t m = 2 + static_cast<uint32_t>(rng->UniformU64(max_bags - 1));
    std::vector<AttrSet> bags(m);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      uint32_t lo = static_cast<uint32_t>(rng->UniformU64(m));
      uint32_t hi = lo + static_cast<uint32_t>(rng->UniformU64(m - lo));
      for (uint32_t j = lo; j <= hi; ++j) bags[j].Add(a);
    }
    bool ok = true;
    for (const AttrSet& b : bags) ok = ok && !b.Empty();
    if (!ok) continue;
    Result<JoinTree> tree = JoinTree::Path(std::move(bags));
    if (tree.ok()) return std::move(tree).value();
  }
}

/// A random star join tree for an MVD X ->> Y1 | ... | Yk over all
/// attributes: X is a random (possibly empty) subset, the rest are randomly
/// partitioned into k >= 2 non-empty branches.
inline JoinTree RandomStarJoinTree(Rng* rng, uint32_t num_attrs) {
  AJD_CHECK(num_attrs >= 2);
  while (true) {
    AttrSet x;
    for (uint32_t a = 0; a < num_attrs; ++a) {
      if (rng->Bernoulli(0.25)) x.Add(a);
    }
    AttrSet rest = AttrSet::Range(num_attrs).Minus(x);
    if (rest.Count() < 2) continue;
    uint32_t k = 2 + static_cast<uint32_t>(
                         rng->UniformU64(std::max(1u, rest.Count() - 1)));
    std::vector<AttrSet> branches(k);
    uint32_t idx = 0;
    // Ensure the first k attributes of `rest` seed distinct branches.
    rest.ForEach([&](uint32_t a) {
      if (idx < k) {
        branches[idx].Add(a);
      } else {
        branches[rng->UniformU64(k)].Add(a);
      }
      ++idx;
    });
    if (idx < k) continue;  // fewer rest attrs than branches
    Result<JoinTree> tree = JoinTree::FromMvdPartition(x, branches);
    if (tree.ok()) return std::move(tree).value();
  }
}

/// Alternates between path and star trees.
inline JoinTree RandomJoinTree(Rng* rng, uint32_t num_attrs) {
  return rng->Bernoulli(0.5) ? RandomPathJoinTree(rng, num_attrs)
                             : RandomStarJoinTree(rng, num_attrs);
}

}  // namespace testing_util
}  // namespace ajd

#endif  // AJD_TESTS_TEST_UTIL_H_
