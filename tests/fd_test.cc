#include <gtest/gtest.h>

#include "core/mvd_check.h"
#include "discovery/fd.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

Relation EmployeeData() {
  Schema s = Schema::Make(
                 {{"emp", 0}, {"dept", 0}, {"head", 0}, {"building", 0}})
                 .value();
  RelationBuilder b(s);
  b.AddStringRow({"ann", "db", "codd", "dragon"});
  b.AddStringRow({"bob", "db", "codd", "dragon"});
  b.AddStringRow({"cat", "ml", "mitchell", "lion"});
  b.AddStringRow({"dan", "ml", "mitchell", "lion"});
  b.AddStringRow({"eve", "sys", "tanenbaum", "lion"});
  return std::move(b).Build();
}

TEST(FdDiscovery, FindsDeptDeterminesHeadAndBuilding) {
  Relation r = EmployeeData();
  std::vector<Fd> fds = DiscoverFds(r).value();
  auto has = [&](AttrSet lhs, uint32_t rhs) {
    for (const Fd& fd : fds) {
      if (fd.lhs == lhs && fd.rhs == rhs) return true;
    }
    return false;
  };
  uint32_t dept = r.schema().PositionOf("dept");
  uint32_t head = r.schema().PositionOf("head");
  uint32_t building = r.schema().PositionOf("building");
  uint32_t emp = r.schema().PositionOf("emp");
  EXPECT_TRUE(has(AttrSet::Singleton(dept), head));
  EXPECT_TRUE(has(AttrSet::Singleton(dept), building));
  EXPECT_TRUE(has(AttrSet::Singleton(head), dept));  // 1:1 here
  EXPECT_TRUE(has(AttrSet::Singleton(emp), dept));   // emp is a key
  EXPECT_FALSE(has(AttrSet::Singleton(building), dept));  // lion is shared
}

TEST(FdDiscovery, MinimalityPruning) {
  Relation r = EmployeeData();
  std::vector<Fd> fds = DiscoverFds(r).value();
  uint32_t dept = r.schema().PositionOf("dept");
  uint32_t head = r.schema().PositionOf("head");
  // {dept} -> head is reported; {dept, building} -> head must be pruned.
  for (const Fd& fd : fds) {
    if (fd.rhs == head) {
      EXPECT_FALSE(AttrSet::Singleton(dept).IsSubsetOf(fd.lhs) &&
                   fd.lhs.Count() > 1)
          << "non-minimal determinant reported";
    }
  }
}

TEST(FdDiscovery, DiscoveredFdsActuallyHold) {
  Rng rng(330);
  for (int trial = 0; trial < 15; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 20);
    FdDiscoveryOptions options;
    options.max_lhs_size = 2;
    std::vector<Fd> fds = DiscoverFds(r, options).value();
    for (const Fd& fd : fds) {
      EXPECT_TRUE(
          SatisfiesFd(r, fd.lhs, AttrSet::Singleton(fd.rhs)).value())
          << fd.ToString(r.schema());
      EXPECT_EQ(fd.error, 0.0);
    }
  }
}

TEST(FdDiscovery, ExhaustiveAgainstBruteForce) {
  // Cross-check discovery (minimality off) against the direct decision
  // procedure on all candidates.
  Rng rng(331);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 15);
  FdDiscoveryOptions options;
  options.max_lhs_size = 2;
  options.minimal_only = false;
  std::vector<Fd> fds = DiscoverFds(r, options).value();
  auto reported = [&](AttrSet lhs, uint32_t rhs) {
    for (const Fd& fd : fds) {
      if (fd.lhs == lhs && fd.rhs == rhs) return true;
    }
    return false;
  };
  AttrSet universe = r.schema().AllAttrs();
  for (uint32_t size = 0; size <= 2; ++size) {
    ForEachSubsetOfSize(universe, size, [&](AttrSet lhs) {
      for (uint32_t rhs = 0; rhs < r.NumAttrs(); ++rhs) {
        if (lhs.Contains(rhs)) continue;
        bool holds =
            SatisfiesFd(r, lhs, AttrSet::Singleton(rhs)).value();
        EXPECT_EQ(reported(lhs, rhs), holds)
            << lhs.ToString() << " -> " << rhs;
      }
    });
  }
}

TEST(FdDiscovery, ApproximateThresholdAdmitsNoisyFds) {
  // dept -> head with one dirty row: exact discovery misses it, a relaxed
  // error threshold finds it.
  Schema s = Schema::Make({{"dept", 0}, {"head", 0}}).value();
  RelationBuilder b(s);
  for (int i = 0; i < 20; ++i) {
    b.AddStringRow({"db", "codd" + std::string(i == 0 ? "X" : "")});
  }
  for (int i = 0; i < 20; ++i) b.AddStringRow({"ml", "mitchell"});
  Relation r = std::move(b).Build(/*dedupe=*/false);

  FdDiscoveryOptions exact;
  exact.max_lhs_size = 1;
  std::vector<Fd> strict = DiscoverFds(r, exact).value();
  bool strict_found = false;
  for (const Fd& fd : strict) {
    if (fd.rhs == 1 && fd.lhs == AttrSet{0}) strict_found = true;
  }
  EXPECT_FALSE(strict_found);

  FdDiscoveryOptions relaxed = exact;
  relaxed.max_error = 0.2;
  std::vector<Fd> loose = DiscoverFds(r, relaxed).value();
  bool loose_found = false;
  for (const Fd& fd : loose) {
    if (fd.rhs == 1 && fd.lhs == AttrSet{0}) {
      loose_found = true;
      EXPECT_GT(fd.error, 0.0);
      EXPECT_LE(fd.error, 0.2);
    }
  }
  EXPECT_TRUE(loose_found);
}

TEST(FdDiscovery, ValidatesInputs) {
  Schema s = Schema::Make({{"A", 2}}).value();
  Relation empty = Relation::FromRows(s, {}).value();
  EXPECT_FALSE(DiscoverFds(empty).ok());
}

TEST(Fd, RendersWithNames) {
  Relation r = EmployeeData();
  Fd fd{AttrSet::Singleton(r.schema().PositionOf("dept")),
        r.schema().PositionOf("head"), 0.0};
  EXPECT_EQ(fd.ToString(r.schema()), "{dept} -> head");
}

}  // namespace
}  // namespace ajd
