// Boundary coverage across modules: extreme attribute counts, degenerate
// relations, maximal domains, and adversarial shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/loss.h"
#include "info/entropy.h"
#include "info/j_measure.h"
#include "jointree/gyo.h"
#include "random/random_relation.h"
#include "relation/acyclic_join.h"
#include "relation/ops.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(EdgeCases, SixtyFourAttributeRelation) {
  // The AttrSet capacity limit, end to end.
  std::vector<uint64_t> dims(64, 2);
  Schema s = Schema::MakeSynthetic(dims).value();
  RelationBuilder b(s);
  std::vector<uint32_t> row(64, 0);
  b.AddRow(row);
  for (uint32_t i = 0; i < 64; ++i) row[i] = 1;
  b.AddRow(row);
  Relation r = std::move(b).Build();
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_NEAR(EntropyOf(r, AttrSet::Range(64)), std::log(2.0), 1e-12);
  // A 2-bag tree over all 64 attributes.
  AttrSet first = AttrSet::Range(33);
  AttrSet second = AttrSet::Range(64).Minus(AttrSet::Range(32));
  JoinTree t = JoinTree::Make({first, second}, {{0, 1}}).value();
  LossReport loss = ComputeLoss(r, t).value();
  EXPECT_EQ(loss.rho, 0.0);  // rows agree on the separator only diagonally
}

TEST(EdgeCases, SingleRowRelationIsAlwaysLossless) {
  Rng rng(350);
  for (int trial = 0; trial < 10; ++trial) {
    Schema s = Schema::MakeSynthetic({4, 4, 4}).value();
    Relation r = Relation::FromRows(
                     s, {{static_cast<uint32_t>(rng.UniformU64(4)),
                          static_cast<uint32_t>(rng.UniformU64(4)),
                          static_cast<uint32_t>(rng.UniformU64(4))}})
                     .value();
    JoinTree t = testing_util::RandomJoinTree(&rng, 3);
    LossReport loss = ComputeLoss(r, t).value();
    EXPECT_EQ(loss.rho, 0.0);
    EXPECT_NEAR(JMeasure(r, t), 0.0, 1e-12);
  }
}

TEST(EdgeCases, TwoBagTreeWithIdenticalBagsViaGyo) {
  // Duplicate bags are legal input to GYO (one is an ear of the other).
  GyoResult g = RunGyo({AttrSet{0, 1}, AttrSet{0, 1}}).value();
  EXPECT_TRUE(g.acyclic);
}

TEST(EdgeCases, FullDomainRelationIsIndependentEverywhere) {
  // R = entire product domain: every CMI is 0, every schema lossless.
  Rng rng(351);
  RandomRelationSpec spec;
  spec.domain_sizes = {3, 3, 3};
  spec.num_tuples = 27;
  Relation r = SampleRandomRelation(spec, &rng).value();
  EXPECT_EQ(r.NumRows(), 27u);
  JoinTree t = testing_util::RandomJoinTree(&rng, 3);
  EXPECT_NEAR(JMeasure(r, t), 0.0, 1e-9);
  EXPECT_EQ(ComputeLoss(r, t).value().rho, 0.0);
}

TEST(EdgeCases, SingletonDomains) {
  // All domains of size 1: a single possible tuple.
  Schema s = Schema::MakeSynthetic({1, 1, 1}).value();
  Relation r = Relation::FromRows(s, {{0, 0, 0}}).value();
  JoinTree t =
      JoinTree::Make({AttrSet{0, 1}, AttrSet{1, 2}}, {{0, 1}}).value();
  EXPECT_EQ(ComputeLoss(r, t).value().rho, 0.0);
  EXPECT_NEAR(EntropyOf(r, AttrSet::Range(3)), 0.0, 1e-12);
}

TEST(EdgeCases, StarTreeWithManyLeaves) {
  // 8-attribute star: center {0}, leaves {0,i}.
  std::vector<AttrSet> bags;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  bags.push_back(AttrSet{0, 1});
  for (uint32_t i = 2; i < 8; ++i) {
    bags.push_back(AttrSet{0, i});
    edges.emplace_back(0, static_cast<uint32_t>(bags.size() - 1));
  }
  JoinTree t = JoinTree::Make(bags, edges).value();
  Rng rng(352);
  Relation r = testing_util::RandomTestRelation(&rng, 8, 2, 40);
  // Count propagation and materialization agree even with 7 children.
  AcyclicJoinCount count = CountAcyclicJoin(r, t);
  Relation joined = MaterializeAcyclicJoin(r, t).value();
  EXPECT_EQ(count.exact.value(), joined.NumRows());
}

TEST(EdgeCases, DeepPathTree) {
  // 10-bag path over 11 attributes.
  std::vector<AttrSet> bags;
  for (uint32_t i = 0; i < 10; ++i) bags.push_back(AttrSet{i, i + 1});
  JoinTree t = JoinTree::Path(bags).value();
  Rng rng(353);
  Relation r = testing_util::RandomTestRelation(&rng, 11, 2, 60);
  AcyclicJoinCount count = CountAcyclicJoin(r, t);
  Relation joined = MaterializeAcyclicJoin(r, t).value();
  EXPECT_EQ(count.exact.value(), joined.NumRows());
  // Lemma 4.1 at depth.
  EXPECT_LE(JMeasure(r, t), ComputeLoss(r, t).value().log1p_rho + 1e-8);
}

TEST(EdgeCases, JoinSizeOverflowFallsBackToApprox) {
  // 64 singleton bags over a 4-value diagonal: join size 4^64 = 2^128
  // overflows uint64, but the double-based count must survive and report
  // the overflow via an absent exact value.
  std::vector<uint64_t> dims(64, 4);
  Schema s = Schema::MakeSynthetic(dims).value();
  RelationBuilder b(s);
  std::vector<uint32_t> row(64);
  for (uint32_t v = 0; v < 4; ++v) {
    std::fill(row.begin(), row.end(), v);
    b.AddRow(row);
  }
  Relation r = std::move(b).Build();
  std::vector<AttrSet> bags;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i < 64; ++i) {
    bags.push_back(AttrSet::Singleton(i));
    if (i > 0) edges.emplace_back(i - 1, i);
  }
  JoinTree t = JoinTree::Make(bags, edges).value();
  AcyclicJoinCount count = CountAcyclicJoin(r, t);
  EXPECT_NEAR(count.approx, std::pow(4.0, 64.0), 1e22);
  EXPECT_FALSE(count.exact.has_value());  // uint64 overflow detected
}

TEST(EdgeCases, MultisetRelationEntropyAndJ) {
  // Multiset semantics: empirical distribution weights by multiplicity.
  Schema s = Schema::MakeSynthetic({2, 2}).value();
  RelationBuilder b(s);
  b.AddRow({0, 0});
  b.AddRow({0, 0});
  b.AddRow({0, 0});
  b.AddRow({1, 1});
  Relation r = std::move(b).Build(/*dedupe=*/false);
  JoinTree t = JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 1}}).value();
  // J = I(A;B) with P(0,0) = 3/4: H(A) = H(B) = H(AB) = h(1/4).
  double h = -(0.75 * std::log(0.75) + 0.25 * std::log(0.25));
  EXPECT_NEAR(JMeasure(r, t), h, 1e-12);
}

TEST(EdgeCases, ProjectionOfMultisetIsSet) {
  Schema s = Schema::MakeSynthetic({2, 2}).value();
  RelationBuilder b(s);
  b.AddRow({0, 0});
  b.AddRow({0, 1});
  b.AddRow({0, 1});
  Relation r = std::move(b).Build(/*dedupe=*/false);
  EXPECT_EQ(Project(r, AttrSet{0}).NumRows(), 1u);
  EXPECT_EQ(Project(r, AttrSet{0, 1}).NumRows(), 2u);
}

TEST(EdgeCases, AnalysisOnMaximallyLossySchema) {
  // Fully independent singleton bags on the diagonal relation: the worst
  // acyclic schema. rho = N^{k-1} - 1 for k attributes.
  Schema s = Schema::MakeSynthetic({6, 6, 6}).value();
  std::vector<std::vector<uint32_t>> rows;
  for (uint32_t i = 0; i < 6; ++i) rows.push_back({i, i, i});
  Relation r = Relation::FromRows(s, rows).value();
  JoinTree t = JoinTree::FromMvdPartition(
                   AttrSet(), {AttrSet{0}, AttrSet{1}, AttrSet{2}})
                   .value();
  AjdAnalysis a = AnalyzeAjd(r, t).value();
  EXPECT_NEAR(a.loss.rho, 35.0, 1e-9);  // 6^3/6 - 1
  EXPECT_NEAR(a.j, 2.0 * std::log(6.0), 1e-9);
  // Lemma 4.1 is tight here too: J = ln(1+rho) = ln 36.
  EXPECT_NEAR(a.j, a.loss.log1p_rho, 1e-9);
}

TEST(EdgeCases, ReducedSchemaCheckOnContainedBags) {
  JoinTree t =
      JoinTree::Make({AttrSet{0, 1, 2}, AttrSet{1, 2}}, {{0, 1}}).value();
  EXPECT_FALSE(t.SchemaIsReduced());
  // The machinery still works: the contained bag contributes H - H = 0.
  Rng rng(355);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 20);
  EXPECT_NEAR(JMeasure(r, t), 0.0, 1e-9);
  EXPECT_EQ(ComputeLoss(r, t).value().rho, 0.0);
}

}  // namespace
}  // namespace ajd
