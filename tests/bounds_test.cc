#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"
#include "core/loss.h"
#include "core/worstcase.h"
#include "info/j_measure.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// ---------------------------------------------------------------------------
// Lemma 4.1 (deterministic lower bound) — a property that must hold for
// EVERY relation and every acyclic schema.
// ---------------------------------------------------------------------------

class Lemma41Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma41Test, JAtMostLog1pRho) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    double j = JMeasure(r, t);
    LossReport loss = ComputeLoss(r, t).value();
    EXPECT_LE(j, loss.log1p_rho + 1e-8)
        << "J=" << j << " log1p(rho)=" << loss.log1p_rho << "\n"
        << t.ToString();
    EXPECT_LE(RhoLowerBoundFromJ(j), loss.rho + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma41Test,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(Lemma41, TightOnDiagonalFamily) {
  // Example 4.1: J = ln N = ln(1 + rho) exactly, for every N >= 2.
  for (uint64_t n : {2ull, 3ull, 8ull, 50ull, 300ull}) {
    Instance inst = MakeDiagonalInstance(n).value();
    double j = JMeasure(inst.relation, inst.tree);
    LossReport loss = ComputeLoss(inst.relation, inst.tree).value();
    EXPECT_NEAR(j, std::log(static_cast<double>(n)), 1e-9);
    EXPECT_NEAR(j, loss.log1p_rho, 1e-9);
    EXPECT_NEAR(RhoLowerBoundFromJ(j), loss.rho, 1e-6 * n);
  }
}

TEST(Lemma41, InverseFormsConsistent) {
  for (double rho : {0.0, 0.1, 1.0, 10.0, 999.0}) {
    EXPECT_NEAR(RhoLowerBoundFromJ(JUpperBoundFromRho(rho)), rho,
                1e-9 * (1 + rho));
  }
}

// ---------------------------------------------------------------------------
// Proposition 5.1 (product decomposition). NOTE: the proposition AS STATED
// is not universally valid — see Prop51.CounterexampleViolatesStatedBound
// below and EXPERIMENTS.md. On random relations it holds overwhelmingly
// often; these seeded runs document that typical-case behavior.
// ---------------------------------------------------------------------------

class Prop51Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop51Test, SchemaLossAtMostProductOfMvdLossesTypically) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 5, 3, 50);
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    LossReport loss = ComputeLoss(r, t).value();
    std::vector<double> mvd_losses;
    for (const Mvd& mvd : t.SupportMvds()) {
      mvd_losses.push_back(ComputeMvdLoss(r, mvd).value().rho);
    }
    double bound = Proposition51ProductBound(mvd_losses);
    EXPECT_LE(loss.log1p_rho, bound + 1e-8) << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop51Test,
                         ::testing::Values(111, 112, 113, 114));

TEST(Prop51, CounterexampleViolatesStatedBound) {
  // ERRATUM: Proposition 5.1 of the paper fails on this 10-tuple instance.
  // 1 + rho(R,S) = 3.2 but the per-MVD product is (1.6)^2 = 2.56, for BOTH
  // the edge-support MVDs and every DFS enumeration of the path rooted at
  // an end (the two coincide here).
  Instance inst = MakeProp51Counterexample().value();
  LossReport loss = ComputeLoss(inst.relation, inst.tree).value();
  EXPECT_NEAR(loss.rho, 2.2, 1e-12);  // |R'| = 32, N = 10
  std::vector<double> mvd_losses;
  for (const Mvd& mvd : inst.tree.SupportMvds()) {
    mvd_losses.push_back(ComputeMvdLoss(inst.relation, mvd).value().rho);
  }
  double bound = Proposition51ProductBound(mvd_losses);
  EXPECT_NEAR(bound, 2.0 * std::log(1.6), 1e-9);
  EXPECT_GT(loss.log1p_rho, bound);  // the violation
  // Lemma 4.1 still holds, as it must (it is proved independently).
  EXPECT_LE(JMeasure(inst.relation, inst.tree), loss.log1p_rho + 1e-9);
}

TEST(Prop51, EmptySupportGivesZero) {
  EXPECT_EQ(Proposition51ProductBound({}), 0.0);
}

TEST(Prop51, SumsLog1pTerms) {
  EXPECT_NEAR(Proposition51ProductBound({1.0, 3.0}),
              std::log(2.0) + std::log(4.0), 1e-12);
}

// ---------------------------------------------------------------------------
// Theorem 5.1 / 5.2 formula plumbing.
// ---------------------------------------------------------------------------

TEST(Thm51, EpsilonStarShrinksWithN) {
  double prev = 1e300;
  for (uint64_t n = 1 << 10; n <= (1 << 24); n <<= 2) {
    double eps = EpsilonStarMvd(64, 64, 4, n, 0.05);
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(Thm51, EpsilonStarGrowsWithDomains) {
  EXPECT_LT(EpsilonStarMvd(16, 16, 4, 1 << 20, 0.05),
            EpsilonStarMvd(64, 64, 4, 1 << 20, 0.05));
  EXPECT_LT(EpsilonStarMvd(16, 16, 2, 1 << 20, 0.05),
            EpsilonStarMvd(16, 16, 64, 1 << 20, 0.05));
}

TEST(Thm51, SwapsForWlog) {
  // dA >= dB is w.l.o.g.: the bound must be symmetric in (dA, dB).
  EXPECT_DOUBLE_EQ(EpsilonStarMvd(8, 64, 4, 1 << 20, 0.05),
                   EpsilonStarMvd(64, 8, 4, 1 << 20, 0.05));
  EXPECT_DOUBLE_EQ(Theorem51MinN(8, 64, 4, 0.05),
                   Theorem51MinN(64, 8, 4, 0.05));
}

TEST(Thm51, QualifyingConditionMonotoneInN) {
  const uint64_t d = 32;
  double min_n = Theorem51MinN(d, d, 4, 0.05);
  EXPECT_FALSE(
      Theorem51Applies(d, d, 4, static_cast<uint64_t>(min_n * 0.5), 0.05));
  EXPECT_TRUE(
      Theorem51Applies(d, d, 4, static_cast<uint64_t>(min_n * 2.0), 0.05));
}

TEST(Thm51, TighterDeltaNeedsMoreSamples) {
  EXPECT_LT(Theorem51MinN(32, 32, 4, 0.1), Theorem51MinN(32, 32, 4, 0.001));
  EXPECT_LT(EpsilonStarMvd(32, 32, 4, 1 << 20, 0.1),
            EpsilonStarMvd(32, 32, 4, 1 << 20, 0.001));
}

TEST(Thm52, DeviationShrinksWithEta) {
  double prev = 1e300;
  for (uint64_t eta = 1 << 12; eta <= (1 << 26); eta <<= 2) {
    double dev = Theorem52EntropyDeviation(64, eta, 0.05);
    EXPECT_LT(dev, prev);
    prev = dev;
  }
}

TEST(Thm52, QualifyingEta) {
  double min_eta = Theorem52MinEta(64, 0.05);
  EXPECT_TRUE(
      Theorem52Applies(64, 64, static_cast<uint64_t>(min_eta) + 1, 0.05));
  EXPECT_FALSE(
      Theorem52Applies(64, 64, static_cast<uint64_t>(min_eta / 2), 0.05));
}

TEST(Cor521, DeviationIsTwiceEntropyScale) {
  // 40 sqrt(dA ln^3(2eta/d)/eta) vs 20 sqrt(dA ln^3(eta/d)/eta): the
  // corollary pays a union bound over two entropies.
  EXPECT_GT(Corollary521Deviation(64, 1 << 20, 0.05),
            Theorem52EntropyDeviation(64, 1 << 20, 0.05));
}

TEST(Prop54, GapBoundMatchesC) {
  EXPECT_NEAR(Proposition54ExpectedEntropyGap(100),
              2.0 * std::log(100.0) / 10.0, 1e-12);
}

TEST(Prop55, TailBoundDecreasesInT) {
  double prev = 1e300;
  for (double t = 0.05; t < 2.0; t += 0.05) {
    double b = Proposition55TailBound(64, 64, 1 << 16, t);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
}

TEST(Prop53, AssemblesBounds) {
  SchemaUpperBound b =
      Proposition53Bound({0.1, 0.2}, {0.01, 0.02}, /*j=*/0.25);
  EXPECT_NEAR(b.sum_cmi_plus_eps, 0.33, 1e-12);
  EXPECT_NEAR(b.via_j, 2 * 0.25 + 0.03, 1e-12);
}

// ---------------------------------------------------------------------------
// Proposition 5.3 end-to-end: the assembled schema bound holds w.h.p. for
// random relations. We use a small instance and verify the INEQUALITY
// ln(1+rho) <= sum_i CMI_i + eps_i, which holds trivially when eps is large
// but must also never be violated when it applies.
// ---------------------------------------------------------------------------

TEST(Prop53, BoundHoldsOnRandomMvdInstances) {
  Rng rng(120);
  const uint64_t d = 8, n = 128;
  int violations = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, d, n);
    JoinTree t =
        JoinTree::Make({AttrSet{0, 2}, AttrSet{1, 2}}, {{0, 1}}).value();
    LossReport loss = ComputeLoss(r, t).value();
    std::vector<double> cmis = SupportCmis(r, t);
    double eps = EpsilonStarMvd(d, d, d, r.NumRows(), 0.05);
    SchemaUpperBound bound =
        Proposition53Bound(cmis, {eps}, JMeasure(r, t));
    if (loss.log1p_rho > bound.sum_cmi_plus_eps) ++violations;
  }
  EXPECT_EQ(violations, 0);
}

}  // namespace
}  // namespace ajd
