#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/worstcase.h"
#include "info/factorized.h"
#include "info/j_measure.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// ---------------------------------------------------------------------------
// Theorem 3.2: J(T) = D_KL(P || P^T). The central identity of the paper,
// checked exhaustively on randomized relations x randomized join trees.
// ---------------------------------------------------------------------------

class JEqualsKlTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JEqualsKlTest, JMeasureEqualsKlDivergence) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 50);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    double j = JMeasure(r, t);
    FactorizedDistribution pt(r, t);
    double kl = pt.KlFromEmpirical();
    EXPECT_NEAR(j, kl, 1e-8) << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JEqualsKlTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Chain-rule identity: J = sum_i I(Omega_{1:i-1}; Omega_i | Delta_i) for
// every DFS enumeration (telescoping; independent of the root).
// ---------------------------------------------------------------------------

class ChainRuleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChainRuleTest, JMeasureEqualsChainRuleSumForEveryRoot) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 5, 3, 60);
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    double j = JMeasure(r, t);
    for (uint32_t root = 0; root < t.NumNodes(); ++root) {
      EXPECT_NEAR(j, JMeasureViaChainRule(r, t, root), 1e-8)
          << t.ToString() << " root=" << root;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainRuleTest,
                         ::testing::Values(11, 12, 13, 14));

// ---------------------------------------------------------------------------
// Theorem 2.2 upper side: J <= sum of DFS-order CMIs, for every root.
// ---------------------------------------------------------------------------

class SandwichUpperTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SandwichUpperTest, JAtMostSumOfDfsCmis) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 5, 3, 60);
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    double j = JMeasure(r, t);
    for (uint32_t root = 0; root < t.NumNodes(); ++root) {
      SandwichBounds sandwich = DfsSandwich(r, t, root);
      EXPECT_LE(j, sandwich.sum_cmi + 1e-8)
          << t.ToString() << " root=" << root;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SandwichUpperTest,
                         ::testing::Values(21, 22, 23, 24));

// ---------------------------------------------------------------------------
// Theorem 2.2 lower side via edge supports: every support-MVD CMI is at
// most J (merging bags only coarsens the model class; see DESIGN.md).
// ---------------------------------------------------------------------------

class SandwichLowerTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SandwichLowerTest, EverySupportCmiAtMostJ) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 5, 3, 60);
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    double j = JMeasure(r, t);
    for (double cmi : SupportCmis(r, t)) {
      EXPECT_LE(cmi, j + 1e-8) << t.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SandwichLowerTest,
                         ::testing::Values(31, 32, 33, 34));

// ---------------------------------------------------------------------------
// ERRATUM: Theorem 2.2's lower side AS STATED — with DFS prefix/suffix
// sets — fails on a 4-tuple lossless instance where an attribute lives in
// both prefix and suffix but not in Delta_i. The edge-support variant is
// the sound lower bound (tested above).
// ---------------------------------------------------------------------------

TEST(Sandwich, DfsLowerSideCounterexample) {
  Instance inst = MakeThm22DfsCounterexample().value();
  double j = JMeasure(inst.relation, inst.tree);
  EXPECT_NEAR(j, 0.0, 1e-10);  // the instance is lossless
  SandwichBounds sandwich = DfsSandwich(inst.relation, inst.tree, 0);
  // The DFS-stated lower bound is violated: max CMI = ln 2 > 0 = J.
  EXPECT_NEAR(sandwich.max_cmi, std::log(2.0), 1e-10);
  EXPECT_GT(sandwich.max_cmi, j + 0.5);
  // The edge-support CMIs all vanish, as Beeri et al. require for a
  // lossless AJD.
  for (double cmi : SupportCmis(inst.relation, inst.tree)) {
    EXPECT_NEAR(cmi, 0.0, 1e-10);
  }
  // And the chain-rule identity still recovers J exactly.
  EXPECT_NEAR(JMeasureViaChainRule(inst.relation, inst.tree), 0.0, 1e-10);
}

// ---------------------------------------------------------------------------
// Theorem 2.1 (Lee): J = 0 iff the AJD holds.
// ---------------------------------------------------------------------------

TEST(JMeasure, ZeroOnLosslessInstances) {
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = MakeLosslessMvdInstance(6, 6, 3, 2, 3, &rng).value();
    EXPECT_NEAR(JMeasure(inst.relation, inst.tree), 0.0, 1e-9);
  }
}

TEST(JMeasure, PositiveOnDiagonalInstances) {
  Instance inst = MakeDiagonalInstance(8).value();
  EXPECT_NEAR(JMeasure(inst.relation, inst.tree), std::log(8.0), 1e-9);
}

// J depends only on the schema, not on the tree shape: two different trees
// with the same bags give the same J (Section 2.2 remark).
TEST(JMeasure, TreeShapeInvariance) {
  // Bags {X,U},{X,V},{X,W} as a path and as a star.
  std::vector<AttrSet> bags = {AttrSet{0, 1}, AttrSet{0, 2}, AttrSet{0, 3}};
  JoinTree path = JoinTree::Make(bags, {{0, 1}, {1, 2}}).value();
  JoinTree star = JoinTree::Make(bags, {{0, 1}, {0, 2}}).value();
  Rng rng(62);
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 50);
    EXPECT_NEAR(JMeasure(r, path), JMeasure(r, star), 1e-9);
  }
}

TEST(JMeasure, MvdReducesToCmi) {
  // For S = {XZ, XY}: J = I(Z;Y|X) (Section 2.2).
  Rng rng(63);
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 40);
    JoinTree t =
        JoinTree::Make({AttrSet{0, 2}, AttrSet{0, 1}}, {{0, 1}}).value();
    EntropyCalculator calc(&r);
    double cmi = calc.ConditionalMutualInformation(AttrSet{2}, AttrSet{1},
                                                   AttrSet{0});
    EXPECT_NEAR(JMeasure(r, t), cmi, 1e-9);
  }
}

TEST(JMeasureDetailed, BreakdownSumsToJ) {
  Rng rng(64);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
  JoinTree t = testing_util::RandomJoinTree(&rng, 4);
  JMeasureBreakdown bd = JMeasureDetailed(r, t);
  EXPECT_NEAR(bd.j,
              bd.sum_bag_entropies - bd.sum_sep_entropies - bd.total_entropy,
              1e-12);
  EXPECT_NEAR(bd.j, JMeasure(r, t), 1e-9);
}

TEST(JMeasure, NonNegativeAlways) {
  Rng rng(65);
  for (int trial = 0; trial < 40; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    EXPECT_GE(JMeasure(r, t), 0.0);
  }
}

TEST(DfsSandwich, PerStepCmisMatchMaxAndSum) {
  Rng rng(66);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
  JoinTree t = testing_util::RandomJoinTree(&rng, 4);
  SandwichBounds sb = DfsSandwich(r, t);
  double sum = 0.0, mx = 0.0;
  for (double c : sb.per_step_cmi) {
    sum += c;
    mx = std::max(mx, c);
  }
  EXPECT_NEAR(sb.sum_cmi, sum, 1e-12);
  EXPECT_NEAR(sb.max_cmi, mx, 1e-12);
  EXPECT_EQ(sb.per_step_cmi.size(), t.NumNodes() - 1);
}

}  // namespace
}  // namespace ajd
