#include <gtest/gtest.h>

#include "core/mvd_check.h"
#include "core/worstcase.h"
#include "info/j_measure.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(SatisfiesMvd, HoldsOnPlantedInstance) {
  Rng rng(310);
  Instance inst = MakeLosslessMvdInstance(8, 8, 4, 3, 3, &rng).value();
  Mvd mvd = MakeMvd(AttrSet{2}, AttrSet{0}, AttrSet{1});
  EXPECT_TRUE(SatisfiesMvd(inst.relation, mvd).value());
}

TEST(SatisfiesMvd, FailsOnDiagonal) {
  Instance inst = MakeDiagonalInstance(4).value();
  Mvd mvd = MakeMvd(AttrSet(), AttrSet{0}, AttrSet{1});
  EXPECT_FALSE(SatisfiesMvd(inst.relation, mvd).value());
}

TEST(SatisfiesAjd, MatchesLossZero) {
  Rng rng(311);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    if (t.AllAttrs() != r.schema().AllAttrs()) continue;
    bool ajd = SatisfiesAjd(r, t).value();
    double j = JMeasure(r, t);
    EXPECT_EQ(ajd, j < 1e-9) << t.ToString();
  }
}

// Beeri et al. [3, Thm 8.8]: R |= AJD(S) iff R satisfies every support MVD.
TEST(SatisfiesAjd, EquivalentToSupportMvds) {
  Rng rng(312);
  for (int trial = 0; trial < 40; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    if (t.AllAttrs() != r.schema().AllAttrs()) continue;
    EXPECT_EQ(SatisfiesAjd(r, t).value(),
              SatisfiesAllSupportMvds(r, t).value())
        << t.ToString();
  }
}

TEST(SatisfiesAjd, RequiresFullCoverage) {
  Rng rng(313);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 10);
  JoinTree t = JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 1}}).value();
  EXPECT_FALSE(SatisfiesAjd(r, t).ok());
}

TEST(SatisfiesFd, DetectsFunctionalDependency) {
  // dept -> head holds; emp -> dept holds; dept -> emp does not.
  Schema s = Schema::Make({{"emp", 4}, {"dept", 2}, {"head", 2}}).value();
  Relation r = Relation::FromRows(
                   s, {{0, 0, 0}, {1, 0, 0}, {2, 1, 1}, {3, 1, 1}})
                   .value();
  EXPECT_TRUE(SatisfiesFd(r, AttrSet{1}, AttrSet{2}).value());
  EXPECT_TRUE(SatisfiesFd(r, AttrSet{0}, AttrSet{1, 2}).value());
  EXPECT_FALSE(SatisfiesFd(r, AttrSet{1}, AttrSet{0}).value());
}

TEST(SatisfiesFd, EmptyLhsMeansConstant) {
  Schema s = Schema::Make({{"A", 2}, {"B", 1}}).value();
  Relation r = Relation::FromRows(s, {{0, 0}, {1, 0}}).value();
  EXPECT_TRUE(SatisfiesFd(r, AttrSet(), AttrSet{1}).value());
  EXPECT_FALSE(SatisfiesFd(r, AttrSet(), AttrSet{0}).value());
}

TEST(SatisfiesFd, EmptyRhsIsTrivial) {
  Schema s = Schema::Make({{"A", 2}}).value();
  Relation r = Relation::FromRows(s, {{0}, {1}}).value();
  EXPECT_TRUE(SatisfiesFd(r, AttrSet{0}, AttrSet()).value());
}

// An FD lhs -> rhs implies the MVD lhs ->> rhs | rest (Section 1: FDs are
// special MVDs).
TEST(SatisfiesFd, FdImpliesMvd) {
  Rng rng(314);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 25);
    for (uint32_t lhs_attr = 0; lhs_attr < 4; ++lhs_attr) {
      for (uint32_t rhs_attr = 0; rhs_attr < 4; ++rhs_attr) {
        if (lhs_attr == rhs_attr) continue;
        AttrSet lhs = AttrSet::Singleton(lhs_attr);
        AttrSet rhs = AttrSet::Singleton(rhs_attr);
        if (!SatisfiesFd(r, lhs, rhs).value()) continue;
        AttrSet rest =
            r.schema().AllAttrs().Minus(lhs).Minus(rhs);
        Mvd mvd = MakeMvd(lhs, rhs, rest);
        EXPECT_TRUE(SatisfiesMvd(r, mvd).value())
            << "FD " << lhs_attr << "->" << rhs_attr;
      }
    }
  }
}

}  // namespace
}  // namespace ajd
