#include <gtest/gtest.h>

#include "core/loss.h"
#include "discovery/fd.h"
#include "discovery/normalize.h"
#include "info/j_measure.h"
#include "jointree/gyo.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// FD helper: lhs -> rhs as an Fd record.
Fd MakeFd(AttrSet lhs, uint32_t rhs) { return Fd{lhs, rhs, 0.0}; }

TEST(Closure, FollowsChains) {
  // 0 -> 1, 1 -> 2.
  std::vector<Fd> fds = {MakeFd(AttrSet{0}, 1), MakeFd(AttrSet{1}, 2)};
  EXPECT_EQ(Closure(AttrSet{0}, fds), (AttrSet{0, 1, 2}));
  EXPECT_EQ(Closure(AttrSet{1}, fds), (AttrSet{1, 2}));
  EXPECT_EQ(Closure(AttrSet{2}, fds), (AttrSet{2}));
}

TEST(Closure, CompositeDeterminants) {
  // {0,1} -> 2.
  std::vector<Fd> fds = {MakeFd(AttrSet{0, 1}, 2)};
  EXPECT_EQ(Closure(AttrSet{0}, fds), (AttrSet{0}));
  EXPECT_EQ(Closure(AttrSet{0, 1}, fds), (AttrSet{0, 1, 2}));
}

TEST(Implies, TransitiveInference) {
  std::vector<Fd> fds = {MakeFd(AttrSet{0}, 1), MakeFd(AttrSet{1}, 2)};
  EXPECT_TRUE(Implies(fds, AttrSet{0}, AttrSet{2}));
  EXPECT_FALSE(Implies(fds, AttrSet{2}, AttrSet{0}));
  EXPECT_TRUE(Implies(fds, AttrSet{2}, AttrSet{2}));  // reflexivity
}

TEST(CandidateKeys, SingleKeyChain) {
  // 0 -> 1 -> 2 over {0,1,2}: the only key is {0}.
  std::vector<Fd> fds = {MakeFd(AttrSet{0}, 1), MakeFd(AttrSet{1}, 2)};
  auto keys = CandidateKeys(AttrSet::Range(3), fds).value();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (AttrSet{0}));
}

TEST(CandidateKeys, MultipleKeys) {
  // 0 -> 1 and 1 -> 0, plus both determine 2: keys {0} and {1}.
  std::vector<Fd> fds = {MakeFd(AttrSet{0}, 1), MakeFd(AttrSet{1}, 0),
                         MakeFd(AttrSet{0}, 2)};
  auto keys = CandidateKeys(AttrSet::Range(3), fds).value();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(CandidateKeys, NoFdsMeansWholeUniverse) {
  auto keys = CandidateKeys(AttrSet::Range(3), {}).value();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttrSet::Range(3));
}

TEST(IsBcnf, DetectsViolation) {
  // {0,1,2} with 1 -> 2 and key {0,1}: violated (1 is not a superkey).
  std::vector<Fd> fds = {MakeFd(AttrSet{1}, 2)};
  EXPECT_FALSE(IsBcnf(AttrSet::Range(3), fds));
  // {1,2} alone is fine: 1 is a key of it.
  EXPECT_TRUE(IsBcnf(AttrSet{1, 2}, fds));
  // No FDs: trivially BCNF.
  EXPECT_TRUE(IsBcnf(AttrSet::Range(3), {}));
}

TEST(BcnfDecompose, TextbookEmployeeExample) {
  // (emp, dept, head): emp -> dept, dept -> head.
  // Expected decomposition: {emp, dept}, {dept, head}.
  std::vector<Fd> fds = {MakeFd(AttrSet{0}, 1), MakeFd(AttrSet{1}, 2)};
  auto bags = BcnfDecompose(AttrSet::Range(3), fds).value();
  ASSERT_EQ(bags.size(), 2u);
  bool has_emp_dept = false, has_dept_head = false;
  for (AttrSet b : bags) {
    if (b == (AttrSet{0, 1})) has_emp_dept = true;
    if (b == (AttrSet{1, 2})) has_dept_head = true;
    EXPECT_TRUE(IsBcnf(b, fds));
  }
  EXPECT_TRUE(has_emp_dept);
  EXPECT_TRUE(has_dept_head);
}

TEST(BcnfDecompose, AlreadyBcnfIsUntouched) {
  auto bags = BcnfDecompose(AttrSet::Range(3), {}).value();
  ASSERT_EQ(bags.size(), 1u);
  EXPECT_EQ(bags[0], AttrSet::Range(3));
}

TEST(BcnfDecompose, AllBagsAreBcnf) {
  Rng rng(340);
  for (int trial = 0; trial < 30; ++trial) {
    // Random FD set over 5 attributes.
    std::vector<Fd> fds;
    uint32_t num_fds = 1 + rng.UniformU64(4);
    for (uint32_t i = 0; i < num_fds; ++i) {
      AttrSet lhs;
      lhs.Add(static_cast<uint32_t>(rng.UniformU64(5)));
      if (rng.Bernoulli(0.4)) {
        lhs.Add(static_cast<uint32_t>(rng.UniformU64(5)));
      }
      uint32_t rhs = static_cast<uint32_t>(rng.UniformU64(5));
      if (lhs.Contains(rhs)) continue;
      fds.push_back(MakeFd(lhs, rhs));
    }
    auto bags = BcnfDecompose(AttrSet::Range(5), fds).value();
    for (AttrSet b : bags) {
      EXPECT_TRUE(IsBcnf(b, fds)) << b.ToString();
    }
    // Bags cover the universe.
    AttrSet all;
    for (AttrSet b : bags) all = all.Union(b);
    EXPECT_EQ(all, AttrSet::Range(5));
  }
}

// End-to-end: discover FDs from data, BCNF-decompose, and verify with the
// paper's machinery that the decomposition is lossless (rho = 0, J = 0)
// whenever the decomposition is acyclic.
TEST(BcnfDecompose, LosslessOnRealDataViaAjdMachinery) {
  Schema s = Schema::Make(
                 {{"emp", 0}, {"dept", 0}, {"head", 0}, {"building", 0}})
                 .value();
  RelationBuilder b(s);
  b.AddStringRow({"ann", "db", "codd", "dragon"});
  b.AddStringRow({"bob", "db", "codd", "dragon"});
  b.AddStringRow({"cat", "ml", "mitchell", "lion"});
  b.AddStringRow({"dan", "ml", "mitchell", "lion"});
  b.AddStringRow({"eve", "sys", "tanenbaum", "lion"});
  Relation r = std::move(b).Build();

  std::vector<Fd> fds = DiscoverFds(r).value();
  auto bags = BcnfDecompose(r.schema().AllAttrs(), fds).value();
  ASSERT_GE(bags.size(), 2u);

  Result<JoinTree> tree = BuildJoinTree(bags);
  ASSERT_TRUE(tree.ok()) << "BCNF schema should be acyclic here";
  LossReport loss = ComputeLoss(r, tree.value()).value();
  EXPECT_EQ(loss.rho, 0.0);
  EXPECT_NEAR(JMeasure(r, tree.value()), 0.0, 1e-9);
}

// BCNF decompositions driven by FDs that hold in the data are lossless
// even when cyclic-looking: check rho == 0 whenever GYO accepts.
TEST(BcnfDecompose, RandomDataRoundTrip) {
  Rng rng(341);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 2, 8);
    FdDiscoveryOptions options;
    options.max_lhs_size = 2;
    std::vector<Fd> fds = DiscoverFds(r, options).value();
    auto bags = BcnfDecompose(r.schema().AllAttrs(), fds).value();
    Result<JoinTree> tree = BuildJoinTree(bags);
    if (!tree.ok()) continue;  // cyclic BCNF schema: out of AJD scope
    LossReport loss = ComputeLoss(r, tree.value()).value();
    EXPECT_EQ(loss.rho, 0.0) << "BCNF must be lossless";
  }
}

}  // namespace
}  // namespace ajd
