#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/worstcase.h"
#include "discovery/miner.h"
#include "info/j_measure.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(Miner, RecoversPlantedMvd) {
  // Data satisfying C ->> A | B exactly: the miner must find a 2-bag tree
  // with J ~ 0.
  Rng rng(150);
  Instance inst = MakeLosslessMvdInstance(10, 10, 6, 3, 3, &rng).value();
  MinerOptions options;
  options.max_bag_size = 2;
  MinerReport report = MineJoinTree(inst.relation, options).value();
  EXPECT_NEAR(report.j, 0.0, 1e-9);
  EXPECT_GE(report.tree.NumNodes(), 2u);
  // The separator of some split must be exactly {C} (= position 2).
  bool found_c = false;
  for (const SplitRecord& s : report.splits) {
    if (s.separator == AttrSet{2}) found_c = true;
  }
  EXPECT_TRUE(found_c);
}

TEST(Miner, LosslessMinedSchemaHasZeroLoss) {
  Rng rng(151);
  Instance inst = MakeLosslessMvdInstance(8, 8, 5, 2, 4, &rng).value();
  MinerReport report = MineJoinTree(inst.relation).value();
  AjdAnalysis a = AnalyzeAjd(inst.relation, report.tree).value();
  EXPECT_TRUE(a.lossless);
}

TEST(Miner, ForcedSplittingRespectsMaxBagSize) {
  Rng rng(152);
  Relation r = testing_util::RandomTestRelation(&rng, 6, 3, 60);
  MinerOptions options;
  options.max_bag_size = 3;
  options.max_separator_size = 2;
  MinerReport report = MineJoinTree(r, options).value();
  for (uint32_t v = 0; v < report.tree.NumNodes(); ++v) {
    EXPECT_LE(report.tree.bag(v).Count(), 3u) << report.tree.ToString();
  }
}

TEST(Miner, SumOfSplitCmisUpperBoundsJ) {
  Rng rng(153);
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 5, 3, 50);
    MinerOptions options;
    options.max_bag_size = 2;
    MinerReport report = MineJoinTree(r, options).value();
    EXPECT_GE(report.sum_split_cmi + 1e-8, report.j);
  }
}

TEST(Miner, ProducesValidTreeOnRandomData) {
  Rng rng(154);
  for (int trial = 0; trial < 15; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 5, 4, 80);
    MinerOptions options;
    options.max_bag_size = 1 + trial % 4;
    MinerReport report = MineJoinTree(r, options).value();
    // Tree covers all attributes (JoinTree::Make already validated RIP).
    EXPECT_EQ(report.tree.AllAttrs(), r.schema().AllAttrs());
    // Lemma 4.1 prediction is consistent with the actual loss.
    AjdAnalysis a = AnalyzeAjd(r, report.tree).value();
    EXPECT_LE(report.rho_lower_bound, a.loss.rho + 1e-6);
  }
}

TEST(Miner, HighThresholdKeepsSingleBag) {
  Rng rng(155);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
  MinerOptions options;
  options.max_bag_size = 64;    // never force
  options.cmi_threshold = -1.0; // never accept
  MinerReport report = MineJoinTree(r, options).value();
  EXPECT_EQ(report.tree.NumNodes(), 1u);
  EXPECT_NEAR(report.j, 0.0, 1e-12);
}

TEST(Miner, RejectsDegenerateInputs) {
  Schema s1 = Schema::Make({{"A", 2}}).value();
  Relation one_attr = Relation::FromRows(s1, {{0}}).value();
  EXPECT_FALSE(MineJoinTree(one_attr).ok());

  Schema s2 = Schema::Make({{"A", 2}, {"B", 2}}).value();
  Relation empty = Relation::FromRows(s2, {}).value();
  EXPECT_FALSE(MineJoinTree(empty).ok());
}

TEST(Miner, NestedMvdsYieldPathDecomposition) {
  // Build data with two nested independencies: A _||_ B | C and
  // (AB C) _||_ D | B. Construct as product structure.
  Schema s = Schema::Make({{"A", 4}, {"B", 4}, {"C", 2}, {"D", 4}}).value();
  std::vector<std::vector<uint32_t>> rows;
  for (uint32_t c = 0; c < 2; ++c) {
    for (uint32_t a = 0; a < 2; ++a) {
      for (uint32_t b = 0; b < 2; ++b) {
        for (uint32_t d = 0; d < 2; ++d) {
          // Within C-group: A x B product; D depends only on B.
          rows.push_back({c * 2 + a, c * 2 + b, c, b * 2 + d});
        }
      }
    }
  }
  Relation r = Relation::FromRows(s, rows).value();
  MinerOptions options;
  options.max_bag_size = 2;
  MinerReport report = MineJoinTree(r, options).value();
  EXPECT_NEAR(report.j, 0.0, 1e-9);
  AjdAnalysis a = AnalyzeAjd(r, report.tree).value();
  EXPECT_TRUE(a.lossless);
}

TEST(Miner, ReportRendersWithNames) {
  Rng rng(156);
  Instance inst = MakeLosslessMvdInstance(6, 6, 3, 2, 2, &rng).value();
  MinerOptions options;
  options.max_bag_size = 2;
  MinerReport report = MineJoinTree(inst.relation, options).value();
  std::string text = report.ToString(inst.relation.schema());
  EXPECT_NE(text.find("bag"), std::string::npos);
  EXPECT_NE(text.find("CMI"), std::string::npos);
}

}  // namespace
}  // namespace ajd
