#include <gtest/gtest.h>

#include "jointree/join_tree.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// The running example: bags {A,B}, {B,C}, {C,D} on a path.
JoinTree PathAbBcCd() {
  return JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}})
      .value();
}

TEST(JoinTree, MakeValidatesEdgeCount) {
  EXPECT_FALSE(JoinTree::Make({AttrSet{0}, AttrSet{1}}, {}).ok());
  EXPECT_FALSE(
      JoinTree::Make({AttrSet{0}}, {{0, 0}}).ok());  // too many edges
}

TEST(JoinTree, MakeRejectsSelfLoopsAndRangeErrors) {
  EXPECT_FALSE(
      JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 0}}).ok());
  EXPECT_FALSE(
      JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 5}}).ok());
}

TEST(JoinTree, MakeRejectsDisconnected) {
  // 4 nodes, 3 edges, but one component of 2 + a 2-cycle elsewhere.
  EXPECT_FALSE(JoinTree::Make(
                   {AttrSet{0}, AttrSet{1}, AttrSet{2}, AttrSet{3}},
                   {{0, 1}, {2, 3}, {2, 3}})
                   .ok());
}

TEST(JoinTree, MakeRejectsRunningIntersectionViolation) {
  // Attribute 0 appears in bags 0 and 2 but not bag 1 on the path 0-1-2.
  EXPECT_FALSE(JoinTree::Make(
                   {AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{0, 2}},
                   {{0, 1}, {1, 2}})
                   .ok());
}

TEST(JoinTree, SingleNodeTreeIsValid) {
  JoinTree t = JoinTree::Make({AttrSet{0, 1}}, {}).value();
  EXPECT_EQ(t.NumNodes(), 1u);
  EXPECT_EQ(t.AllAttrs(), (AttrSet{0, 1}));
  EXPECT_TRUE(t.SupportMvds().empty());
}

TEST(JoinTree, DisjointBagsAreAllowed) {
  // {A} - {B}: empty separator; RIP holds trivially.
  JoinTree t = JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 1}}).value();
  EXPECT_EQ(t.SupportMvds().size(), 1u);
  EXPECT_TRUE(t.SupportMvds()[0].lhs.Empty());
}

TEST(JoinTree, SchemaIsReducedDetectsContainment) {
  JoinTree reduced = PathAbBcCd();
  EXPECT_TRUE(reduced.SchemaIsReduced());
  JoinTree not_reduced =
      JoinTree::Make({AttrSet{0, 1}, AttrSet{0}}, {{0, 1}}).value();
  EXPECT_FALSE(not_reduced.SchemaIsReduced());
}

TEST(JoinTree, DecomposeProducesValidDfsOrder) {
  JoinTree t = PathAbBcCd();
  DfsDecomposition dec = t.Decompose(0);
  EXPECT_EQ(dec.order.size(), 3u);
  EXPECT_EQ(dec.order[0], 0u);
  EXPECT_EQ(dec.steps.size(), 2u);
  // Parents must appear earlier in the order.
  for (const DfsStep& s : dec.steps) {
    auto pos_of = [&](uint32_t node) {
      for (size_t i = 0; i < dec.order.size(); ++i) {
        if (dec.order[i] == node) return i;
      }
      return size_t{999};
    };
    EXPECT_LT(pos_of(s.parent), pos_of(s.node));
  }
}

TEST(JoinTree, DecomposeSeparatorsOnPath) {
  JoinTree t = PathAbBcCd();
  DfsDecomposition dec = t.Decompose(0);
  EXPECT_EQ(dec.steps[0].delta, (AttrSet{1}));  // {A,B} cap {B,C} = {B}
  EXPECT_EQ(dec.steps[1].delta, (AttrSet{2}));  // {B,C} cap {C,D} = {C}
  EXPECT_EQ(dec.steps[0].prefix, (AttrSet{0, 1}));
  EXPECT_EQ(dec.steps[0].suffix, (AttrSet{1, 2, 3}));
  EXPECT_EQ(dec.steps[1].subtree, (AttrSet{2, 3}));
}

// Paper Section 2.3: Delta_i = Omega_{1:i-1} cap Omega_i for any DFS order.
TEST(JoinTree, DeltaEqualsPrefixIntersectBagProperty) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    for (uint32_t root = 0; root < t.NumNodes(); ++root) {
      DfsDecomposition dec = t.Decompose(root);
      for (const DfsStep& s : dec.steps) {
        EXPECT_EQ(s.delta, s.prefix.Intersect(s.bag))
            << t.ToString() << " root=" << root;
      }
    }
  }
}

TEST(JoinTree, SubtreeSetsAreContainedInSuffix) {
  Rng rng(18);
  for (int trial = 0; trial < 50; ++trial) {
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    DfsDecomposition dec = t.Decompose(0);
    for (const DfsStep& s : dec.steps) {
      EXPECT_TRUE(s.subtree.IsSubsetOf(s.suffix));
      EXPECT_TRUE(s.bag.IsSubsetOf(s.subtree));
    }
  }
}

TEST(JoinTree, SupportMvdSidesCoverUniverseAndMeetInLhs) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    for (const Mvd& mvd : t.SupportMvds()) {
      EXPECT_EQ(mvd.Universe(), t.AllAttrs());
      // RIP: the two component attribute sets meet exactly in the edge
      // separator.
      EXPECT_EQ(mvd.side_a.Intersect(mvd.side_b), mvd.lhs);
      EXPECT_TRUE(mvd.WellFormed());
    }
    EXPECT_EQ(t.SupportMvds().size(), t.NumNodes() - 1);
  }
}

TEST(JoinTree, DfsMvdsCoverUniverse) {
  Rng rng(20);
  for (int trial = 0; trial < 30; ++trial) {
    JoinTree t = testing_util::RandomJoinTree(&rng, 5);
    for (const Mvd& mvd : t.DfsMvds()) {
      EXPECT_EQ(mvd.Universe(), t.AllAttrs());
      EXPECT_TRUE(mvd.lhs.IsSubsetOf(mvd.side_a));
      EXPECT_TRUE(mvd.lhs.IsSubsetOf(mvd.side_b));
    }
  }
}

TEST(JoinTree, FromMvdPartitionBuildsStar) {
  JoinTree t =
      JoinTree::FromMvdPartition(AttrSet{0}, {AttrSet{1}, AttrSet{2},
                                              AttrSet{3}})
          .value();
  EXPECT_EQ(t.NumNodes(), 3u);
  EXPECT_EQ(t.bag(0), (AttrSet{0, 1}));
  EXPECT_EQ(t.bag(2), (AttrSet{0, 3}));
  EXPECT_EQ(t.Neighbors(0).size(), 2u);
}

TEST(JoinTree, FromMvdPartitionRejectsOverlap) {
  EXPECT_FALSE(
      JoinTree::FromMvdPartition(AttrSet{0}, {AttrSet{1}, AttrSet{1}}).ok());
  EXPECT_FALSE(
      JoinTree::FromMvdPartition(AttrSet{0}, {AttrSet{0}}).ok());
}

TEST(JoinTree, RunningIntersectionCheckerOnForeignStructures) {
  std::vector<AttrSet> bags = {AttrSet{0, 1}, AttrSet{1, 2}};
  std::vector<std::vector<uint32_t>> adj = {{1}, {0}};
  EXPECT_TRUE(JoinTree::SatisfiesRunningIntersection(bags, adj));
  bags = {AttrSet{0, 1}, AttrSet{2}, AttrSet{0, 2}};
  adj = {{1}, {0, 2}, {1}};
  EXPECT_FALSE(JoinTree::SatisfiesRunningIntersection(bags, adj));
}

TEST(Mvd, MakeMvdComposesSides) {
  Mvd mvd = MakeMvd(AttrSet{2}, AttrSet{0}, AttrSet{1});
  EXPECT_EQ(mvd.lhs, (AttrSet{2}));
  EXPECT_EQ(mvd.side_a, (AttrSet{0, 2}));
  EXPECT_EQ(mvd.side_b, (AttrSet{1, 2}));
  EXPECT_TRUE(mvd.WellFormed());
  EXPECT_EQ(mvd.ToString(), "{2} ->> {0}|{1}");
}

}  // namespace
}  // namespace ajd
