#include <gtest/gtest.h>

#include <cmath>

#include "random/rng.h"
#include "stats/binomial.h"
#include "stats/functional_entropy.h"
#include "stats/hypergeometric.h"
#include "stats/inequalities.h"
#include "stats/poisson.h"
#include "stats/special.h"
#include "util/math.h"

namespace ajd {
namespace {

// ---------------------------------------------------------------------------
// Hypergeometric.
// ---------------------------------------------------------------------------

TEST(Hypergeometric, PmfSumsToOne) {
  Hypergeometric h(50, 20, 10);
  double total = 0.0;
  for (uint64_t k = h.SupportMin(); k <= h.SupportMax(); ++k) {
    total += h.Pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Hypergeometric, SupportBounds) {
  Hypergeometric h(10, 7, 6);
  EXPECT_EQ(h.SupportMin(), 3u);  // 6 - (10-7)
  EXPECT_EQ(h.SupportMax(), 6u);
  EXPECT_EQ(h.Pmf(2), 0.0);
  EXPECT_EQ(h.Pmf(7), 0.0);
}

TEST(Hypergeometric, MeanMatchesPmf) {
  Hypergeometric h(40, 15, 12);
  double mean = 0.0;
  for (uint64_t k = h.SupportMin(); k <= h.SupportMax(); ++k) {
    mean += static_cast<double>(k) * h.Pmf(k);
  }
  EXPECT_NEAR(mean, h.Mean(), 1e-9);
}

TEST(Hypergeometric, VarianceMatchesPmf) {
  Hypergeometric h(40, 15, 12);
  double mean = h.Mean();
  double var = 0.0;
  for (uint64_t k = h.SupportMin(); k <= h.SupportMax(); ++k) {
    var += (static_cast<double>(k) - mean) *
           (static_cast<double>(k) - mean) * h.Pmf(k);
  }
  EXPECT_NEAR(var, h.Variance(), 1e-9);
}

TEST(Hypergeometric, SampleMomentsConverge) {
  Hypergeometric h(100, 30, 25);
  Rng rng(81);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(h.Sample(&rng));
  double mean = sum / n;
  EXPECT_NEAR(mean, h.Mean(), 0.15);
}

TEST(Hypergeometric, SampleStaysInSupport) {
  Hypergeometric h(12, 8, 7);
  Rng rng(82);
  for (int i = 0; i < 500; ++i) {
    uint64_t s = h.Sample(&rng);
    EXPECT_GE(s, h.SupportMin());
    EXPECT_LE(s, h.SupportMax());
  }
}

TEST(Hypergeometric, CdfReachesOne) {
  Hypergeometric h(30, 10, 10);
  EXPECT_NEAR(h.Cdf(h.SupportMax()), 1.0, 1e-10);
  EXPECT_LT(h.Cdf(h.SupportMin()), 1.0);
}

// Serfling's bound is a valid tail bound: Monte-Carlo tail frequencies never
// exceed it (statistically).
TEST(Hypergeometric, SerflingBoundDominatesEmpiricalTail) {
  const uint64_t population = 200, successes = 80, draws = 50;
  Hypergeometric h(population, successes, draws);
  Rng rng(83);
  const int trials = 3000;
  for (double eps : {3.0, 5.0, 8.0}) {
    int exceed = 0;
    for (int i = 0; i < trials; ++i) {
      if (static_cast<double>(h.Sample(&rng)) - h.Mean() >= eps) ++exceed;
    }
    double freq = static_cast<double>(exceed) / trials;
    double bound = SerflingTailBound(population, draws, eps);
    EXPECT_LE(freq, bound + 0.03) << "eps=" << eps;
  }
}

TEST(Hypergeometric, SerflingSharpIsTighter) {
  EXPECT_LE(SerflingTailBound(100, 60, 4.0, /*sharp=*/true),
            SerflingTailBound(100, 60, 4.0, /*sharp=*/false) + 1e-15);
}

// ---------------------------------------------------------------------------
// Poisson.
// ---------------------------------------------------------------------------

TEST(Poisson, PmfSumsToOne) {
  Poisson p(4.2);
  double total = 0.0;
  for (uint64_t k = 0; k < 60; ++k) total += p.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Poisson, MeanAndVarianceMatchPmf) {
  Poisson p(3.5);
  double mean = 0.0, second = 0.0;
  for (uint64_t k = 0; k < 80; ++k) {
    mean += static_cast<double>(k) * p.Pmf(k);
    second += static_cast<double>(k) * static_cast<double>(k) * p.Pmf(k);
  }
  EXPECT_NEAR(mean, 3.5, 1e-8);
  EXPECT_NEAR(second - mean * mean, 3.5, 1e-7);
}

TEST(Poisson, SampleMomentsConverge) {
  Poisson p(7.0);
  Rng rng(84);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(p.Sample(&rng));
  EXPECT_NEAR(sum / n, 7.0, 0.2);
}

TEST(Poisson, LargeLambdaSampling) {
  Poisson p(1200.0);
  Rng rng(85);
  double sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(p.Sample(&rng));
  EXPECT_NEAR(sum / n / 1200.0, 1.0, 0.02);
}

TEST(Poisson, ChernoffBoundDominatesTail) {
  const double lambda = 2.0;
  Poisson p(lambda);
  const double alpha = 9.0;  // > 3e
  // Exact tail P[X >= alpha*lambda] = P[X >= 18].
  double tail = 0.0;
  for (uint64_t k = 18; k < 100; ++k) tail += p.Pmf(k);
  EXPECT_LE(tail, PoissonChernoffBound(lambda, alpha));
}

TEST(Poisson, LipschitzTailBoundDecreasesInT) {
  double prev = 1.0;
  for (double t = 0.5; t < 10.0; t += 0.5) {
    double b = PoissonLipschitzTailBound(4.0, t);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
}

TEST(Poisson, ExpectedInverseOnePlusMatchesSeries) {
  // Eq. (280): E[1/(1+W)] = (1 - e^-lambda)/lambda.
  const double lambda = 2.7;
  Poisson p(lambda);
  double expect = 0.0;
  for (uint64_t k = 0; k < 80; ++k) {
    expect += p.Pmf(k) / (1.0 + static_cast<double>(k));
  }
  EXPECT_NEAR(expect, PoissonExpectedInverseOnePlus(lambda), 1e-10);
}

// ---------------------------------------------------------------------------
// Binomial.
// ---------------------------------------------------------------------------

TEST(Binomial, PmfSumsToOne) {
  Binomial b(25, 0.3);
  double total = 0.0;
  for (uint64_t k = 0; k <= 25; ++k) total += b.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Binomial, EdgeProbabilities) {
  Binomial zero(10, 0.0);
  EXPECT_NEAR(zero.Pmf(0), 1.0, 1e-12);
  EXPECT_EQ(zero.Pmf(1), 0.0);
  Binomial one(10, 1.0);
  EXPECT_NEAR(one.Pmf(10), 1.0, 1e-12);
}

TEST(Binomial, SampleMomentsConverge) {
  Binomial b(40, 0.25);
  Rng rng(86);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(b.Sample(&rng));
  EXPECT_NEAR(sum / n, b.Mean(), 0.2);
}

TEST(Binomial, RelativeChernoffDominatesEmpiricalTail) {
  // Lemma D.2 with n=200, p=0.5, xi=0.2.
  const uint64_t n = 200;
  const double p = 0.5, xi = 0.2;
  Binomial b(n, p);
  Rng rng(87);
  const int trials = 2000;
  int exceed = 0;
  for (int i = 0; i < trials; ++i) {
    double frac = static_cast<double>(b.Sample(&rng)) / n;
    if (std::fabs(frac - p) >= xi * p) ++exceed;
  }
  double freq = static_cast<double>(exceed) / trials;
  EXPECT_LE(freq, BinomialRelativeChernoffBound(n, p, xi) + 0.03);
}

// ---------------------------------------------------------------------------
// Inequalities.
// ---------------------------------------------------------------------------

TEST(LogSum, InequalityHoldsOnRandomInputs) {
  Rng rng(88);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 1 + rng.UniformU64(6);
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.NextDouble() * 3.0;
      b[i] = rng.NextDouble() * 3.0 + 1e-6;
    }
    LogSumSides sides = LogSumInequality(a, b);
    EXPECT_LE(sides.lhs, sides.rhs + 1e-9);
  }
}

TEST(LogSum, EqualityWhenProportional) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {2.0, 4.0, 6.0};
  LogSumSides sides = LogSumInequality(a, b);
  EXPECT_NEAR(sides.lhs, sides.rhs, 1e-12);
}

TEST(LogSum, InfiniteRhsWhenBVanishes) {
  LogSumSides sides = LogSumInequality({1.0}, {0.0});
  EXPECT_TRUE(std::isinf(sides.rhs));
}

TEST(ChordBound, HoldsForAllPairsOnGrid) {
  // Lemma D.2 second part: |g(t) - g(s)| <= 2 g(|s-t|) on [0,1].
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    for (double t = 0.0; t <= 1.0; t += 0.05) {
      double lhs = std::fabs(NegTLogT(t) - NegTLogT(s));
      EXPECT_LE(lhs, NegTLogTChordBound(s, t) + 1e-12)
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(LemmaD6, CorrectedThresholdImpliesInequality) {
  for (double y : {3.0, 10.0, 100.0, 5000.0, 1e7}) {
    double x = LemmaD6Threshold(y);
    EXPECT_GE(x / std::log(x), y - 1e-9) << y;
    // And beyond the threshold it keeps holding (x/ln x is increasing).
    EXPECT_GE(2 * x / std::log(2 * x), y - 1e-9) << y;
  }
}

TEST(LemmaD6, PaperThresholdIsInsufficient) {
  // Documents the erratum: at the paper's threshold x = y ln y the claimed
  // inequality x / ln x >= y FAILS for y > e.
  for (double y : {10.0, 100.0, 5000.0}) {
    double x_paper = y * std::log(y);
    EXPECT_LT(x_paper / std::log(x_paper), y) << y;
  }
}

// ---------------------------------------------------------------------------
// Special functions (Section 5 surrogates).
// ---------------------------------------------------------------------------

TEST(Special, GHatMatchesGAboveKnee) {
  const double zeta = 50.0;
  for (double t = 1.0 / zeta; t <= 1.0; t += 0.01) {
    EXPECT_NEAR(GHat(t, zeta), NegTLogT(t), 1e-12);
  }
}

TEST(Special, GHatApproxErrorIsOneOverZeta) {
  const double zeta = 40.0;
  double max_err = 0.0;
  for (double t = 0.0; t <= 1.0; t += 0.001) {
    max_err = std::max(max_err, std::fabs(GHat(t, zeta) - NegTLogT(t)));
  }
  EXPECT_LE(max_err, GHatApproxError(zeta) + 1e-9);
  EXPECT_NEAR(max_err, 1.0 / zeta, 1e-6);  // attained at t = 0
}

TEST(Special, GHatIsLipschitz) {
  const double zeta = 30.0;
  const double lip = GHatLipschitzConstant(zeta);
  const double step = 1e-4;
  for (double t = 0.0; t + step <= 1.0; t += step) {
    double slope = (GHat(t + step, zeta) - GHat(t, zeta)) / step;
    EXPECT_LE(std::fabs(slope), lip + 1e-6) << t;
  }
}

TEST(Special, GTildeCapsAtInverseE) {
  const double eta = 100.0;
  const double inv_e = std::exp(-1.0);
  EXPECT_NEAR(GTilde(inv_e, eta), GHat(inv_e, eta), 1e-12);
  EXPECT_NEAR(GTilde(5.0, eta), GHat(inv_e, eta), 1e-12);
  EXPECT_NEAR(GTilde(0.1, eta), GHat(0.1, eta), 1e-12);
}

TEST(Special, FZetaDefinition) {
  EXPECT_NEAR(FZeta(0, 8.0), 0.125, 1e-12);
  EXPECT_EQ(FZeta(3, 8.0), 3.0);
}

TEST(Special, PoissonizationFactorQuadratic) {
  EXPECT_EQ(PoissonizationFactor(10.0), 2100.0);
}

// Lemma B.4 numerically: P[Z = b] <= 21 dA^2 P[W = b] on a small instance.
TEST(Special, PoissonizationBoundHoldsNumerically) {
  const uint64_t d_a = 8, d_b = 6, eta = 16;  // eta in [dA, dA dB - dB]
  Hypergeometric z(d_a * d_b, d_b, eta);
  Poisson w(static_cast<double>(eta) / static_cast<double>(d_a));
  for (uint64_t b = 0; b <= d_b; ++b) {
    EXPECT_LE(z.Pmf(b), PoissonizationFactor(static_cast<double>(d_a)) *
                            w.Pmf(b) + 1e-12)
        << "b=" << b;
  }
}

// ---------------------------------------------------------------------------
// Functional entropy.
// ---------------------------------------------------------------------------

TEST(FunctionalEntropy, ZeroForConstant) {
  EXPECT_NEAR(FunctionalEntropy({2.0, 2.0}, {0.4, 0.6}), 0.0, 1e-12);
}

TEST(FunctionalEntropy, NonNegativeOnRandomInputs) {
  Rng rng(89);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = 2 + rng.UniformU64(5);
    std::vector<double> values(n), probs(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      values[i] = rng.NextDouble() * 5.0;
      probs[i] = rng.NextDouble() + 0.01;
      total += probs[i];
    }
    for (size_t i = 0; i < n; ++i) probs[i] /= total;
    EXPECT_GE(FunctionalEntropy(values, probs), -1e-10);
  }
}

TEST(FunctionalEntropy, SampleVersionMatchesUniformWeights) {
  std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> probs(4, 0.25);
  EXPECT_NEAR(FunctionalEntropyOfSamples(samples),
              FunctionalEntropy(samples, probs), 1e-12);
}

TEST(BernoulliLsi, CoefficientContinuousAtHalf) {
  EXPECT_NEAR(BernoulliLsiCoefficient(0.5), 2.0, 1e-9);
  EXPECT_NEAR(BernoulliLsiCoefficient(0.5 - 1e-7), 2.0, 1e-4);
  EXPECT_GT(BernoulliLsiCoefficient(0.05), 2.0);
}

// The LSI of Lemma D.1: Ent(g^2) <= c(p) E(g), exercised on the averaging
// function used in the paper's proof (g = sqrt of the normalized sum).
TEST(BernoulliLsi, InequalityHoldsForSqrtAverage) {
  const uint32_t d = 10;
  const double p = 0.3;
  Rng rng(90);
  auto g = [](const std::vector<int>& r) {
    double sum = 0.0;
    for (int v : r) sum += (v + 1) / 2.0;
    return std::sqrt(sum / static_cast<double>(r.size()));
  };
  double es = EfronSteinVariance(g, d, p, &rng);
  // Exact Ent(g^2) by enumeration.
  std::vector<double> values, probs;
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    std::vector<int> r(d);
    double prob = 1.0;
    for (uint32_t j = 0; j < d; ++j) {
      r[j] = (mask >> j) & 1 ? 1 : -1;
      prob *= r[j] == 1 ? p : 1.0 - p;
    }
    double gv = g(r);
    values.push_back(gv * gv);
    probs.push_back(prob);
  }
  double ent = FunctionalEntropy(values, probs);
  EXPECT_LE(ent, BernoulliLsiCoefficient(p) * es + 1e-9);
}

TEST(LemmaB2B3, BoundsArePositiveAndShrink) {
  EXPECT_GT(LemmaB2EntBound(0.1, 100.0), 0.0);
  EXPECT_GT(LemmaB2EntBound(0.1, 100.0), LemmaB2EntBound(0.1, 10000.0));
  EXPECT_GT(LemmaB3CouplingBound(100.0), LemmaB3CouplingBound(100000.0));
  EXPECT_EQ(PoissonEntUpperBound(), 4.0);
}

// Ent(W) <= 4 for Poisson W (Eq. 281), checked numerically.
TEST(LemmaB5, PoissonFunctionalEntropyBelowFour) {
  for (double lambda : {1.5, 3.0, 10.0, 60.0}) {
    Poisson p(lambda);
    std::vector<double> values, probs;
    for (uint64_t k = 0; k < 400; ++k) {
      values.push_back(static_cast<double>(k));
      probs.push_back(p.Pmf(k));
    }
    EXPECT_LE(FunctionalEntropy(values, probs), PoissonEntUpperBound())
        << lambda;
  }
}

}  // namespace
}  // namespace ajd
