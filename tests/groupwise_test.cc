#include <gtest/gtest.h>

#include <cmath>

#include "core/groupwise.h"
#include "core/loss.h"
#include "core/worstcase.h"
#include "info/entropy.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// The mixture identity (Eq. 336): the groupwise-assembled CMI equals the
// Eq. (4) conditional mutual information, exactly.
TEST(Groupwise, MixtureIdentityMatchesEq4Cmi) {
  Rng rng(320);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 50);
    GroupwiseMvdReport report =
        AnalyzeMvdGroupwise(r, AttrSet{0}, AttrSet{1}, AttrSet{2}).value();
    EntropyCalculator calc(&r);
    double eq4 = calc.ConditionalMutualInformation(AttrSet{0}, AttrSet{1},
                                                   AttrSet{2});
    EXPECT_NEAR(report.cmi, eq4, 1e-9);
  }
}

// The groupwise join-size accounting matches ComputeMvdLoss.
TEST(Groupwise, LossMatchesComputeMvdLoss) {
  Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 40);
    GroupwiseMvdReport report =
        AnalyzeMvdGroupwise(r, AttrSet{0}, AttrSet{1}, AttrSet{2}).value();
    Mvd mvd = MakeMvd(AttrSet{2}, AttrSet{0}, AttrSet{1});
    LossReport loss = ComputeMvdLoss(r, mvd).value();
    EXPECT_NEAR(report.log1p_rho, loss.log1p_rho, 1e-9);
  }
}

// Eq. (44) is a deterministic consequence of the log sum inequality; it
// must hold for every relation.
TEST(Groupwise, Eq44HoldsAlways) {
  Rng rng(322);
  for (int trial = 0; trial < 60; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3 + trial % 4,
                                                  20 + trial * 3);
    GroupwiseMvdReport report =
        AnalyzeMvdGroupwise(r, AttrSet{0}, AttrSet{1}, AttrSet{2}).value();
    EXPECT_LE(report.log1p_rho, report.eq44_rhs + 1e-9);
  }
}

TEST(Groupwise, GroupSizesSumToN) {
  Rng rng(323);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 60);
  GroupwiseMvdReport report =
      AnalyzeMvdGroupwise(r, AttrSet{0}, AttrSet{1}, AttrSet{2}).value();
  uint64_t total = 0;
  for (const GroupStat& g : report.groups) {
    total += g.n;
    EXPECT_GE(g.n, report.min_group);
    EXPECT_GE(g.rho, 0.0);
    EXPECT_GE(g.mi, 0.0);
  }
  EXPECT_EQ(total, r.NumRows());
}

TEST(Groupwise, LosslessInstanceHasZeroGroupMis) {
  Rng rng(324);
  Instance inst = MakeLosslessMvdInstance(8, 8, 5, 3, 3, &rng).value();
  GroupwiseMvdReport report =
      AnalyzeMvdGroupwise(inst.relation, AttrSet{0}, AttrSet{1}, AttrSet{2})
          .value();
  for (const GroupStat& g : report.groups) {
    EXPECT_NEAR(g.mi, 0.0, 1e-9);
    EXPECT_EQ(g.rho, 0.0);
  }
  EXPECT_NEAR(report.cmi, 0.0, 1e-9);
}

TEST(Groupwise, EmptyCGivesSingleGroup) {
  Instance inst = MakeDiagonalInstance(6).value();
  GroupwiseMvdReport report =
      AnalyzeMvdGroupwise(inst.relation, AttrSet{0}, AttrSet{1}, AttrSet())
          .value();
  EXPECT_EQ(report.groups.size(), 1u);
  EXPECT_NEAR(report.h_c, 0.0, 1e-12);
  EXPECT_NEAR(report.cmi, std::log(6.0), 1e-9);
}

TEST(Groupwise, ValidatesArguments) {
  Instance inst = MakeDiagonalInstance(4).value();
  // Overlapping branches.
  EXPECT_FALSE(AnalyzeMvdGroupwise(inst.relation, AttrSet{0}, AttrSet{0},
                                   AttrSet())
                   .ok());
  // Empty branch.
  EXPECT_FALSE(AnalyzeMvdGroupwise(inst.relation, AttrSet(), AttrSet{1},
                                   AttrSet())
                   .ok());
  // Bad delta.
  EXPECT_FALSE(AnalyzeMvdGroupwise(inst.relation, AttrSet{0}, AttrSet{1},
                                   AttrSet(), 2.0)
                   .ok());
}

TEST(Groupwise, LemmaC1ThresholdBehaviour) {
  // Tiny groups cannot satisfy the (deliberately huge) Lemma C.1
  // threshold; the report must say so rather than pretend.
  Rng rng(325);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 50);
  GroupwiseMvdReport report =
      AnalyzeMvdGroupwise(r, AttrSet{0}, AttrSet{1}, AttrSet{2}).value();
  EXPECT_GT(report.lemma_c1_threshold, 128.0);
  EXPECT_FALSE(report.lemma_c1_holds);
  EXPECT_NE(report.ToString().find("below Lemma C.1"), std::string::npos);
}

}  // namespace
}  // namespace ajd
