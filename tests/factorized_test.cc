#include <gtest/gtest.h>

#include <cmath>

#include "core/worstcase.h"
#include "info/factorized.h"
#include "relation/acyclic_join.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// Proposition 3.1 / normalization: P^T is a probability distribution whose
// support is contained in R' = materialized acyclic join.
TEST(FactorizedDistribution, NormalizesOverAcyclicJoin) {
  Rng rng(70);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 35);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    if (t.AllAttrs() != r.schema().AllAttrs()) continue;
    FactorizedDistribution pt(r, t);
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    EXPECT_NEAR(pt.TotalMassOver(joined), 1.0, 1e-8) << t.ToString();
  }
}

// Lemma 3.3: P^T preserves every bag marginal and separator marginal of P.
TEST(FactorizedDistribution, PreservesBagMarginals) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    if (t.AllAttrs() != r.schema().AllAttrs()) continue;
    FactorizedDistribution pt(r, t);
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    for (AttrSet bag : pt.BagSets()) {
      SparseDistribution pt_marginal = pt.MarginalOver(joined, bag);
      SparseDistribution p_marginal = SparseDistribution::Empirical(r, bag);
      ASSERT_EQ(pt_marginal.arity(), p_marginal.arity());
      for (uint32_t i = 0; i < p_marginal.SupportSize(); ++i) {
        EXPECT_NEAR(p_marginal.ProbAt(i),
                    pt_marginal.Prob(p_marginal.TupleAt(i)), 1e-8)
            << "bag " << bag.ToString();
      }
    }
  }
}

TEST(FactorizedDistribution, PreservesSeparatorMarginals) {
  Rng rng(72);
  for (int trial = 0; trial < 15; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomPathJoinTree(&rng, 4);
    if (t.AllAttrs() != r.schema().AllAttrs()) continue;
    FactorizedDistribution pt(r, t);
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    for (AttrSet sep : pt.SeparatorSets()) {
      if (sep.Empty()) continue;
      SparseDistribution pt_marginal = pt.MarginalOver(joined, sep);
      SparseDistribution p_marginal = SparseDistribution::Empirical(r, sep);
      for (uint32_t i = 0; i < p_marginal.SupportSize(); ++i) {
        EXPECT_NEAR(p_marginal.ProbAt(i),
                    pt_marginal.Prob(p_marginal.TupleAt(i)), 1e-8);
      }
    }
  }
}

// P^T dominates P: positive density on every row of R.
TEST(FactorizedDistribution, PositiveOnSupport) {
  Rng rng(73);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    FactorizedDistribution pt(r, t);
    for (uint64_t i = 0; i < r.NumRows(); ++i) {
      EXPECT_GT(pt.Density(r.Row(i)), 0.0);
    }
  }
}

// When R models the tree exactly, P = P^T on R's support and KL = 0.
TEST(FactorizedDistribution, LosslessMeansPEqualsPt) {
  Rng rng(74);
  Instance inst = MakeLosslessMvdInstance(6, 6, 3, 2, 2, &rng).value();
  FactorizedDistribution pt(inst.relation, inst.tree);
  const double p = 1.0 / static_cast<double>(inst.relation.NumRows());
  for (uint64_t i = 0; i < inst.relation.NumRows(); ++i) {
    EXPECT_NEAR(pt.Density(inst.relation.Row(i)), p, 1e-12);
  }
  EXPECT_NEAR(pt.KlFromEmpirical(), 0.0, 1e-10);
}

// The factorized density does not depend on the DFS root used to collect
// separators (the separator multiset is root-invariant).
TEST(FactorizedDistribution, RootInvariantDensity) {
  Rng rng(75);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 30);
  JoinTree t = testing_util::RandomPathJoinTree(&rng, 4);
  FactorizedDistribution pt0(r, t, 0);
  FactorizedDistribution pt1(r, t, t.NumNodes() - 1);
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    EXPECT_NEAR(pt0.Density(r.Row(i)), pt1.Density(r.Row(i)), 1e-12);
  }
}

// Diagonal family: P^T is uniform over the N^2 product, so each original
// row has density 1/N^2 and KL = ln N.
TEST(FactorizedDistribution, DiagonalFamilyDensities) {
  Instance inst = MakeDiagonalInstance(6).value();
  FactorizedDistribution pt(inst.relation, inst.tree);
  for (uint64_t i = 0; i < inst.relation.NumRows(); ++i) {
    EXPECT_NEAR(pt.Density(inst.relation.Row(i)), 1.0 / 36.0, 1e-12);
  }
  EXPECT_NEAR(pt.KlFromEmpirical(), std::log(6.0), 1e-10);
}

}  // namespace
}  // namespace ajd
