// Epoch semantics: randomized equivalence between incremental ingestion
// and cold rebuilds, at every layer.
//
//  - Relation::AppendBatch: append-only growth, epoch bumps, dedupe,
//    domain growth, Status on malformed input.
//  - ColumnStore: post-catch-up dense codes / first_row / sketches are
//    bit-identical to a cold store over the full relation.
//  - Partition::ExtendedOfColumn / ExtendedBy: bit-identical (block
//    boundaries, block order, row order) to the cold factories.
//  - EntropyEngine catch-up: for ANY split of a relation into append
//    batches, with queries interleaved at every epoch, every cached
//    partition after catch-up equals the cold replay of its recorded chain
//    over the full relation EXACTLY, and every entropy served from it is
//    bitwise equal to that replay's XLogX accumulation — across kernels,
//    forced/adaptive fusion, and private/arbiter budgets under eviction
//    pressure. When no queries ran before the appends, the whole engine is
//    bitwise indistinguishable from a cold engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/analysis_session.h"
#include "engine/column_store.h"
#include "engine/entropy_engine.h"
#include "engine/maintenance.h"
#include "engine/partition.h"
#include "info/entropy.h"
#include "random/rng.h"
#include "relation/attr_set.h"
#include "relation/relation.h"
#include "test_util.h"

namespace ajd {
namespace {

// Random rows WITH replacement; occasionally widens the domain so appended
// batches introduce brand-new codes (the dictionary/cardinality-growth
// path).
std::vector<std::vector<uint32_t>> RandomRows(Rng* rng, uint32_t num_attrs,
                                              uint32_t domain,
                                              uint32_t count) {
  std::vector<std::vector<uint32_t>> rows(count,
                                          std::vector<uint32_t>(num_attrs));
  for (auto& row : rows) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
  }
  return rows;
}

Relation RelationFromRows(uint32_t num_attrs,
                          const std::vector<std::vector<uint32_t>>& rows) {
  std::vector<uint64_t> dims(num_attrs, 2);
  RelationBuilder b(Schema::MakeSynthetic(dims).value());
  for (const auto& row : rows) b.AddRow(row);
  return std::move(b).Build(/*dedupe=*/false);
}

void ExpectPartitionsIdentical(const Partition& got, const Partition& want,
                               const char* what) {
  ASSERT_EQ(got.NumBlocks(), want.NumBlocks()) << what;
  ASSERT_EQ(got.NumStrippedRows(), want.NumStrippedRows()) << what;
  for (uint32_t b = 0; b < want.NumBlocks(); ++b) {
    ASSERT_EQ(got.BlockSize(b), want.BlockSize(b)) << what << " block " << b;
    const uint32_t* gb = got.BlockBegin(b);
    const uint32_t* wb = want.BlockBegin(b);
    for (uint32_t i = 0; i < want.BlockSize(b); ++i) {
      ASSERT_EQ(gb[i], wb[i]) << what << " block " << b << " row " << i;
    }
  }
}

// --- Relation::AppendBatch ------------------------------------------------

TEST(EpochRelation, AppendBumpsEpochAndGrowsDomains) {
  Relation r = RelationFromRows(2, {{0, 1}, {1, 0}});
  EXPECT_EQ(r.epoch(), 0u);
  ASSERT_TRUE(r.AppendBatch({{5, 2}}).ok());
  EXPECT_EQ(r.epoch(), 1u);
  EXPECT_EQ(r.NumRows(), 3u);
  EXPECT_GE(r.schema().attr(0).domain_size, 6u);
  EXPECT_GE(r.schema().attr(1).domain_size, 3u);
  // Existing rows untouched (the append-only contract).
  EXPECT_EQ(r.At(0, 0), 0u);
  EXPECT_EQ(r.At(1, 0), 1u);
  // Empty batch: no epoch bump.
  ASSERT_TRUE(r.AppendBatch({}).ok());
  EXPECT_EQ(r.epoch(), 1u);
}

TEST(EpochRelation, AppendBatchStatusOnRaggedRow) {
  Relation r = RelationFromRows(2, {{0, 1}});
  Status s = r.AppendBatch({{1, 2, 3}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Error leaves the relation unchanged — no partial append, no bump.
  EXPECT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.epoch(), 0u);
}

TEST(EpochRelation, DedupedAppendDropsExistingAndWithinBatchDuplicates) {
  Relation r = RelationFromRows(2, {{0, 1}, {1, 1}});
  ASSERT_TRUE(r.AppendBatch({{0, 1}, {2, 2}, {2, 2}}, /*dedupe=*/true).ok());
  EXPECT_EQ(r.NumRows(), 3u);  // only {2,2} landed
  EXPECT_EQ(r.epoch(), 1u);
  // An all-duplicate batch changes nothing, including the epoch.
  ASSERT_TRUE(r.AppendBatch({{0, 1}, {1, 1}}, /*dedupe=*/true).ok());
  EXPECT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.epoch(), 1u);
}

TEST(EpochRelation, StringAppendToCodeBuiltRelationIsRejected) {
  // A non-empty code-built relation has no dictionaries; interning would
  // assign fresh codes that alias the raw code space. Must error, not
  // silently corrupt.
  Relation r = RelationFromRows(2, {{5, 7}, {0, 3}});
  Status s = r.AppendStringBatch({{"x", "y"}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.epoch(), 0u);
  // An EMPTY relation may still bootstrap dictionaries via string appends.
  RelationBuilder b(Schema::MakeUniform({"p", "q"}, 0).value());
  Relation empty = std::move(b).Build(/*dedupe=*/false);
  ASSERT_TRUE(empty.AppendStringBatch({{"a", "b"}}).ok());
  EXPECT_EQ(empty.NumRows(), 1u);
  EXPECT_EQ(empty.dict(0)->ValueOf(empty.At(0, 0)), "a");
}

TEST(EpochRelation, StringAppendsInternThroughExistingDictionaries) {
  RelationBuilder b(Schema::MakeUniform({"x", "y"}, 0).value());
  b.AddStringRow({"a", "p"});
  b.AddStringRow({"b", "q"});
  Relation r = std::move(b).Build(/*dedupe=*/false);
  ASSERT_TRUE(r.AppendStringBatch({{"a", "r"}, {"c", "p"}}).ok());
  EXPECT_EQ(r.NumRows(), 4u);
  // "a" reuses its code; "c"/"r" get fresh ones.
  EXPECT_EQ(r.At(2, 0), r.At(0, 0));
  EXPECT_EQ(r.dict(0)->ValueOf(r.At(3, 0)), "c");
  EXPECT_EQ(r.dict(1)->ValueOf(r.At(2, 1)), "r");
}

TEST(EpochRelation, UidStableAcrossAppendsFreshAcrossRelations) {
  Relation a = RelationFromRows(2, {{0, 0}});
  Relation b = RelationFromRows(2, {{0, 0}});
  EXPECT_NE(a.uid(), b.uid());
  const uint64_t uid = a.uid();
  ASSERT_TRUE(a.AppendBatch({{1, 1}}).ok());
  EXPECT_EQ(a.uid(), uid);  // appends grow the same relation
  Relation moved = std::move(a);
  EXPECT_EQ(moved.uid(), uid);  // identity travels with the data
  EXPECT_NE(a.uid(), uid);      // the husk is not the relation
  // Copies are NEW relations: their future appends diverge from the
  // source's, so a snapshot restored at a served address must not pass
  // the session's identity check.
  Relation copy = moved;
  EXPECT_NE(copy.uid(), moved.uid());
  Relation assigned;
  assigned = moved;
  EXPECT_NE(assigned.uid(), moved.uid());
}

TEST(EpochRelation, RestoredSnapshotAtServedAddressGetsFreshEngine) {
  // The review scenario the fresh-uid-on-copy rule exists for: snapshot a
  // relation, let the original grow under a session, restore the snapshot
  // into the SAME object, and append different data back to the same
  // epoch count. The restored object must read as a different relation.
  Rng rng(7050);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 30);
  Relation snapshot = r;
  AnalysisSession session;
  session.EngineFor(r).Entropy(AttrSet{0, 1});
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 3, 4, 20)).ok());
  session.EngineFor(r).Entropy(AttrSet{0, 1});
  r = snapshot;  // restore: same address, same epoch count as snapshot
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 3, 4, 20)).ok());
  // Different uid => transparent rebuild => exact values for the NEW data.
  EntropyEngine& engine = session.EngineFor(r);
  EXPECT_EQ(engine.relation_uid(), r.uid());
  for (uint64_t mask = 1; mask < 8; ++mask) {
    const AttrSet s = AttrSet::FromMask(mask);
    EXPECT_NEAR(engine.Entropy(s), EntropyOf(r, s), 1e-9) << mask;
  }
}

// --- ColumnStore catch-up -------------------------------------------------

TEST(EpochColumnStore, ExtendedColumnsAndSketchesMatchColdStore) {
  Rng rng(7001);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t num_attrs = 2 + static_cast<uint32_t>(rng.UniformU64(3));
    const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(40));
    auto rows = RandomRows(&rng, num_attrs, domain, 40);
    Relation r = RelationFromRows(num_attrs, rows);
    ColumnStore inc(&r);
    // Touch half the columns (and their sketches) before any append so
    // both the extend-built and build-fresh paths are exercised.
    for (uint32_t a = 0; a < num_attrs; a += 2) {
      inc.column(a);
      inc.sketch(a);
    }
    const uint32_t batches = 1 + static_cast<uint32_t>(rng.UniformU64(3));
    for (uint32_t k = 0; k < batches; ++k) {
      // Widening domain: appended batches introduce unseen codes.
      ASSERT_TRUE(
          r.AppendBatch(RandomRows(&rng, num_attrs, domain + 10 * k,
                                   1 + static_cast<uint32_t>(
                                           rng.UniformU64(30))))
              .ok());
      inc.CatchUp();
      for (uint32_t a = 0; a < num_attrs; ++a) inc.column(a);
    }
    ColumnStore cold(&r);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      const Column& ic = inc.column(a);
      const Column& cc = cold.column(a);
      ASSERT_EQ(ic.cardinality, cc.cardinality) << "attr " << a;
      ASSERT_EQ(ic.codes, cc.codes) << "attr " << a;
      ASSERT_EQ(ic.first_row, cc.first_row) << "attr " << a;
      const DistinctSketch& is = inc.sketch(a);
      const DistinctSketch& cs = cold.sketch(a);
      EXPECT_EQ(is.sample_size, cs.sample_size) << "attr " << a;
      EXPECT_EQ(is.prefix_at, cs.prefix_at) << "attr " << a;
      EXPECT_EQ(is.distinct_at, cs.distinct_at) << "attr " << a;
    }
  }
}

TEST(EpochColumnStore, SketchExtensionPastSampleCapMatchesCold) {
  // Crosses the kMaxSamples boundary: identity-prefix extension below,
  // constant-cost resample above; both must equal the cold sketch.
  Rng rng(7002);
  auto rows = RandomRows(&rng, 2, 12, 900);
  Relation r = RelationFromRows(2, rows);
  ColumnStore inc(&r);
  inc.sketch(0);
  inc.sketch(1);
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 2, 12, 80)).ok());  // 980
  inc.CatchUp();
  inc.sketch(0);
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 2, 12, 300)).ok());  // 1280
  inc.CatchUp();
  ColumnStore cold(&r);
  for (uint32_t a = 0; a < 2; ++a) {
    const DistinctSketch& is = inc.sketch(a);
    const DistinctSketch& cs = cold.sketch(a);
    EXPECT_EQ(is.sample_size, cs.sample_size);
    EXPECT_EQ(is.prefix_at, cs.prefix_at);
    EXPECT_EQ(is.distinct_at, cs.distinct_at);
  }
}

TEST(EpochColumnStoreDeathTest, CatchUpAbortsIfRelationShrank) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Relation r = RelationFromRows(2, {{0, 1}, {1, 0}, {1, 1}});
  ColumnStore store(&r);
  store.column(0);
  Relation stolen = std::move(r);  // the husk at &r now has 0 rows
  EXPECT_DEATH(store.CatchUp(), "shrank");
}

// --- Partition delta extension -------------------------------------------

TEST(EpochPartition, ExtendedOfColumnMatchesColdAcrossRandomSplits) {
  Rng rng(7100);
  for (int trial = 0; trial < 60; ++trial) {
    const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(60));
    const uint32_t total = 8 + static_cast<uint32_t>(rng.UniformU64(120));
    auto rows = RandomRows(&rng, 1, domain, total);
    Relation full = RelationFromRows(1, rows);
    const uint64_t split = 1 + rng.UniformU64(total - 1);
    Relation prefix = RelationFromRows(
        1, std::vector<std::vector<uint32_t>>(rows.begin(),
                                              rows.begin() + split));
    ColumnStore prefix_store(&prefix);
    ColumnStore full_store(&full);
    const Column& old_col = prefix_store.column(0);
    const Column& new_col = full_store.column(0);
    Partition old_p = Partition::OfColumn(old_col);
    Partition extended = old_p.ExtendedOfColumn(new_col, split);
    Partition cold = Partition::OfColumn(new_col);
    ExpectPartitionsIdentical(extended, cold, "ExtendedOfColumn");
  }
}

TEST(EpochPartition, ExtendedByMatchesColdRefinementAcrossRandomSplits) {
  Rng rng(7200);
  for (int trial = 0; trial < 60; ++trial) {
    const uint32_t num_attrs = 2 + static_cast<uint32_t>(rng.UniformU64(2));
    const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(12));
    const uint32_t total = 10 + static_cast<uint32_t>(rng.UniformU64(150));
    auto rows = RandomRows(&rng, num_attrs, domain, total);
    Relation full = RelationFromRows(num_attrs, rows);
    const uint64_t split = 1 + rng.UniformU64(total - 1);
    Relation prefix = RelationFromRows(
        num_attrs, std::vector<std::vector<uint32_t>>(
                       rows.begin(), rows.begin() + split));
    ColumnStore prefix_store(&prefix);
    ColumnStore full_store(&full);

    // A random chain of 1..num_attrs-1 refinements below the extended step.
    Partition parent_old = Partition::OfColumn(prefix_store.column(0));
    Partition parent_new = Partition::OfColumn(full_store.column(0));
    const uint32_t chain_len =
        1 + static_cast<uint32_t>(rng.UniformU64(num_attrs - 1));
    for (uint32_t j = 1; j < chain_len; ++j) {
      parent_old = parent_old.RefinedBy(prefix_store.column(j));
      parent_new = parent_new.RefinedBy(full_store.column(j));
    }
    const uint32_t col = chain_len;  // the step being delta-extended
    Partition child_old = parent_old.RefinedBy(prefix_store.column(col));
    Partition extended = child_old.ExtendedBy(
        parent_old, parent_new, full_store.column(col), split);
    Partition cold = parent_new.RefinedBy(full_store.column(col));
    ExpectPartitionsIdentical(extended, cold, "ExtendedBy");
    // Entropy of the extended partition: same XLogX accumulation.
    const double he = extended.EntropyNats(total);
    const double hc = cold.EntropyNats(total);
    EXPECT_EQ(he, hc);
  }
}

TEST(EpochPartition, MetadataDrivenExtensionMatchesSeededWalk) {
  // Two consecutive appends: the first extension SEEDS the correspondence
  // metadata (run lengths + parent first rows); the second runs scan-free
  // off that metadata, with no access to the old parent at all. Both must
  // equal the cold build bitwise, and the scan-free pass must emit
  // metadata that works for a third round.
  Rng rng(7250);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(10));
    const uint32_t n1 = 10 + static_cast<uint32_t>(rng.UniformU64(60));
    const uint32_t n2 = n1 + 1 + static_cast<uint32_t>(rng.UniformU64(30));
    const uint32_t n3 = n2 + 1 + static_cast<uint32_t>(rng.UniformU64(30));
    auto rows = RandomRows(&rng, 2, domain, n3);
    auto rel_at = [&](uint32_t n) {
      return RelationFromRows(
          2, std::vector<std::vector<uint32_t>>(rows.begin(),
                                                rows.begin() + n));
    };
    Relation r1 = rel_at(n1), r2 = rel_at(n2), r3 = rel_at(n3);
    ColumnStore s1(&r1), s2(&r2), s3(&r3);

    Partition p1_parent = Partition::OfColumn(s1.column(0));
    Partition p2_parent = Partition::OfColumn(s2.column(0));
    Partition p3_parent = Partition::OfColumn(s3.column(0));
    Partition child1 = p1_parent.RefinedBy(s1.column(1));

    // Seeding walk (needs the old parent), emits metadata.
    PartitionDelta meta;
    Partition child2 = child1.ExtendedBy(&p1_parent, p2_parent,
                                         s2.column(1), n1, nullptr, &meta);
    ExpectPartitionsIdentical(child2, p2_parent.RefinedBy(s2.column(1)),
                              "seeded extension");
    ASSERT_EQ(meta.run_lengths.size(), meta.parent_first_rows.size());
    ASSERT_EQ(meta.run_lengths.size(), p2_parent.NumBlocks());

    // Scan-free walk: no old parent passed at all.
    PartitionDelta meta3;
    Partition child3 = child2.ExtendedBy(nullptr, p3_parent, s3.column(1),
                                         n2, &meta, &meta3);
    ExpectPartitionsIdentical(child3, p3_parent.RefinedBy(s3.column(1)),
                              "scan-free extension");
    ASSERT_EQ(meta3.run_lengths.size(), p3_parent.NumBlocks());

    // In-place scan-free form agrees too.
    Partition child2_inplace = child2;
    PartitionDelta meta3b;
    child2_inplace.ExtendInPlaceBy(nullptr, p3_parent, s3.column(1), n2,
                                   &meta, &meta3b);
    ExpectPartitionsIdentical(child2_inplace, child3, "in-place scan-free");
    EXPECT_EQ(meta3b.run_lengths, meta3.run_lengths);
    EXPECT_EQ(meta3b.parent_first_rows, meta3.parent_first_rows);
  }
}

// --- Chunked in-place storage ---------------------------------------------

// First-occurrence densification of a raw value stream: dense codes plus
// the strictly ascending first_row table — exactly the store's contract,
// and consistent across every prefix of the stream.
void DensifyStream(const std::vector<uint32_t>& raw,
                   std::vector<uint32_t>* codes,
                   std::vector<uint32_t>* first_row) {
  std::unordered_map<uint32_t, uint32_t> remap;
  codes->reserve(raw.size());
  for (uint32_t i = 0; i < raw.size(); ++i) {
    auto [it, fresh] =
        remap.emplace(raw[i], static_cast<uint32_t>(first_row->size()));
    if (fresh) first_row->push_back(i);
    codes->push_back(it->second);
  }
}

// The densified stream truncated at `n` rows: prefix codes, prefix
// cardinality (first_row is strictly ascending, so a binary search finds
// it), prefix first_row.
Column ColumnAtCut(const std::vector<uint32_t>& codes,
                   const std::vector<uint32_t>& first_row, uint32_t n) {
  const uint32_t card = static_cast<uint32_t>(
      std::lower_bound(first_row.begin(), first_row.end(), n) -
      first_row.begin());
  return MakeOwnedColumn(
      std::vector<uint32_t>(codes.begin(), codes.begin() + n), card,
      std::vector<uint32_t>(first_row.begin(), first_row.begin() + card));
}

TEST(EpochPartition, ChunkedInPlaceSoakMatchesColdAcrossManyBatches) {
  // Multi-batch soak of the chunked in-place layout: ONE root and ONE
  // child object live across every epoch (adopting the chunked layout on
  // the first in-place extension, relocating blocks through their slack,
  // possibly reclaiming back to flat), pinned bitwise against cold
  // rebuilds each epoch. The copy forms — ExtendedOfColumn on a chunked
  // `this`, ExtendedBy with a chunked child (the flatten-first branch) —
  // and the FlattenStripped/FromStripped canonical round-trip ride along.
  Rng rng(7300);
  for (int trial = 0; trial < 12; ++trial) {
    const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(40));
    const uint32_t batches = 4 + static_cast<uint32_t>(rng.UniformU64(5));
    std::vector<uint32_t> cuts;
    uint32_t n = 8 + static_cast<uint32_t>(rng.UniformU64(40));
    for (uint32_t b = 0; b < batches; ++b) {
      cuts.push_back(n);
      n += 1 + static_cast<uint32_t>(rng.UniformU64(60));
    }
    auto rows = RandomRows(&rng, 2, domain, cuts.back());

    Partition root;   // extended in place every epoch after the first
    Partition child;  // "
    PartitionDelta meta;
    uint64_t prev = 0;
    for (uint32_t cut : cuts) {
      Relation r = RelationFromRows(
          2, std::vector<std::vector<uint32_t>>(rows.begin(),
                                                rows.begin() + cut));
      ColumnStore s(&r);
      const Column& c0 = s.column(0);
      const Column& c1 = s.column(1);
      if (prev == 0) {
        root = Partition::OfColumn(c0);
        child = root.RefinedBy(c1, RefineKernel::kAuto, &meta);
      } else {
        // Copy forms first, from the (chunked after epoch 1) old objects.
        Partition root_copy = root.ExtendedOfColumn(c0, prev);
        Partition child_copy =
            child.ExtendedBy(nullptr, root_copy, c1, prev, &meta, nullptr);
        root.ExtendOfColumnInPlace(c0, prev);
        PartitionDelta next;
        child.ExtendInPlaceBy(nullptr, root, c1, prev, &meta, &next);
        meta = std::move(next);
        ExpectPartitionsIdentical(root_copy, root, "root copy vs in-place");
        ExpectPartitionsIdentical(child_copy, child,
                                  "child copy vs in-place");
      }
      Partition cold_root = Partition::OfColumn(c0);
      Partition cold_child = cold_root.RefinedBy(c1);
      ExpectPartitionsIdentical(root, cold_root, "in-place root vs cold");
      ExpectPartitionsIdentical(child, cold_child, "in-place child vs cold");
      EXPECT_EQ(child.EntropyNats(cut), cold_child.EntropyNats(cut));

      // Canonical flat form round-trips the chunked layout unchanged.
      std::vector<uint32_t> flat_rows, flat_offsets;
      child.FlattenStripped(&flat_rows, &flat_offsets);
      Result<Partition> rebuilt = Partition::FromStripped(
          std::move(flat_rows), std::move(flat_offsets), cut);
      ASSERT_TRUE(rebuilt.ok());
      ExpectPartitionsIdentical(rebuilt.value(), cold_child,
                                "flatten round-trip");
      prev = cut;
    }
  }
}

TEST(EpochPartition, KernelCrossoverMidExtensionMatchesColdRebuild) {
  // The counting->radix selection threshold (cardinality > 64Ki AND
  // cardinality >= mass/2) flips between epochs as the stripped mass
  // outgrows the fixed value set. The in-place-extended chunked partitions
  // must stay bitwise identical to cold rebuilds even as the cold side
  // switches kernels mid-trajectory.
  Rng rng(7350);
  // Uniform draws only SHOW a fraction of the domain (coupon collector),
  // so the domain is sized for the observed prefix cardinality to land
  // above the 64Ki radix floor and above mass/2 at the start (~82k seen
  // among 140k rows), and below mass/2 by the end (~110k seen among 300k).
  constexpr uint32_t kCard = 120000;
  constexpr uint32_t kStart = 140000;  // card >= mass/2 -> radix (kSort)
  constexpr uint32_t kEnd = 300000;    // card <  mass/2 -> counting (kMid)
  std::vector<uint32_t> raw(kEnd);
  for (auto& v : raw) v = static_cast<uint32_t>(rng.UniformU64(kCard));
  std::vector<uint32_t> codes, first_row;
  DensifyStream(raw, &codes, &first_row);

  // The trajectory really does cross the selection threshold.
  const Column c_start = ColumnAtCut(codes, first_row, kStart);
  const Column c_end = ColumnAtCut(codes, first_row, kEnd);
  ASSERT_EQ(ChooseRefineKernel(c_start.cardinality, kStart),
            RefineKernel::kSort);
  ASSERT_EQ(ChooseRefineKernel(c_end.cardinality, kEnd), RefineKernel::kMid);

  Partition parent = Partition::Trivial(kStart);
  PartitionDelta meta;
  Partition child = parent.RefinedBy(c_start, RefineKernel::kAuto, &meta);
  Partition root = Partition::OfColumn(c_start);
  uint64_t prev = kStart;
  std::vector<uint32_t> cuts;
  for (int i = 0; i < 3; ++i) {
    cuts.push_back(kStart + 1 +
                   static_cast<uint32_t>(rng.UniformU64(kEnd - kStart - 1)));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.push_back(kEnd);
  for (uint32_t cut : cuts) {
    const Column c = ColumnAtCut(codes, first_row, cut);
    Partition parent_new = Partition::Trivial(cut);
    PartitionDelta next;
    child.ExtendInPlaceBy(nullptr, parent_new, c, prev, &meta, &next);
    meta = std::move(next);
    root.ExtendOfColumnInPlace(c, prev);
    Partition cold_child = parent_new.RefinedBy(c);
    ExpectPartitionsIdentical(child, cold_child, "crossover child");
    ExpectPartitionsIdentical(root, Partition::OfColumn(c),
                              "crossover root");
    EXPECT_EQ(child.EntropyNats(cut), cold_child.EntropyNats(cut));
    prev = cut;
  }
}

// --- Engine catch-up: the acceptance property ----------------------------

struct EngineCase {
  const char* name;
  uint32_t max_fuse_columns;
  size_t session_budget;  // 0 = private per-engine budgets (no arbiter)
  size_t engine_budget;
};

// Replays the recorded chain of a cached partition cold over the full
// relation and checks both the partition layout and the served entropy for
// bitwise equality.
void VerifyCachedPartitionsAgainstColdReplay(EntropyEngine* engine,
                                             const Relation& r) {
  ColumnStore cold_store(&r);
  const uint64_t n = r.NumRows();
  const uint64_t all = r.NumAttrs() >= 64
                           ? ~uint64_t{0}
                           : (uint64_t{1} << r.NumAttrs()) - 1;
  for (uint64_t mask = 1; mask <= all; ++mask) {
    const AttrSet s = AttrSet::FromMask(mask);
    std::vector<uint32_t> chain;
    std::shared_ptr<const Partition> cached;
    if (!engine->CachedPartitionInfo(s, &chain, &cached)) continue;
    ASSERT_EQ(chain.size(), s.Count());
    Partition replay = Partition::OfColumn(cold_store.column(chain[0]));
    for (size_t j = 1; j < chain.size(); ++j) {
      replay = replay.RefinedBy(cold_store.column(chain[j]));
    }
    ExpectPartitionsIdentical(*cached, replay, "cached vs chain replay");
    // Bitwise: the engine's exact-hit path answers from the cached
    // partition with the very accumulation the replay uses.
    EXPECT_EQ(engine->Entropy(s), replay.EntropyNats(n))
        << "set mask " << mask;
    // And the value is the right entropy (vs the legacy reference).
    EXPECT_NEAR(engine->Entropy(s), EntropyOf(r, s), 1e-9);
  }
}

TEST(EpochEngine, IncrementalCatchUpEqualsColdReplayForAnySplit) {
  const EngineCase cases[] = {
      {"adaptive-arbiter", 0, size_t{64} << 20, size_t{64} << 20},
      {"nofuse-private", 1, 0, size_t{64} << 20},
      {"forced-fuse-arbiter", 4, size_t{64} << 20, size_t{64} << 20},
      {"tiny-arbiter-evicting", 0, size_t{6} << 10, size_t{6} << 10},
      {"tiny-private-evicting", 2, 0, size_t{6} << 10},
  };
  Rng rng(7300);
  for (const EngineCase& c : cases) {
    for (int trial = 0; trial < 6; ++trial) {
      const uint32_t num_attrs =
          3 + static_cast<uint32_t>(rng.UniformU64(3));
      const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(8));
      const uint32_t batches =
          2 + static_cast<uint32_t>(rng.UniformU64(4));
      auto first = RandomRows(&rng, num_attrs, domain,
                              5 + static_cast<uint32_t>(rng.UniformU64(40)));
      Relation r = RelationFromRows(num_attrs, first);

      SessionOptions opts;
      opts.engine.max_fuse_columns = c.max_fuse_columns;
      opts.engine.cache_budget_bytes = c.engine_budget;
      opts.cache_budget_bytes = c.session_budget;
      AnalysisSession session(opts);
      EntropyEngine& engine = session.EngineFor(r);

      const uint64_t all_masks = (uint64_t{1} << num_attrs) - 1;
      for (uint32_t k = 0; k < batches; ++k) {
        // Query a random mix at this epoch: plain entropies plus
        // materialized prewarms, so catch-up sees both cached shapes.
        std::vector<AttrSet> prewarm;
        for (int q = 0; q < 8; ++q) {
          const AttrSet s =
              AttrSet::FromMask(1 + rng.UniformU64(all_masks - 1));
          if (q % 2 == 0) {
            engine.Entropy(s);
          } else {
            prewarm.push_back(s);
          }
        }
        engine.PrewarmSubsets(prewarm);
        ASSERT_TRUE(
            r.AppendBatch(
                 RandomRows(&rng, num_attrs, domain + 2 * k,
                            1 + static_cast<uint32_t>(rng.UniformU64(25))))
                .ok());
      }
      // First query after the last append triggers the final catch-up.
      engine.Entropy(AttrSet::FromMask(all_masks));
      ASSERT_EQ(engine.Stats().epoch_catchups, batches) << c.name;
      VerifyCachedPartitionsAgainstColdReplay(&engine, r);
      if (session.cache_arbiter() != nullptr) {
        EXPECT_LE(session.CacheBytes(), c.session_budget) << c.name;
      }
    }
  }
}

TEST(EpochEngine, QueriesOnlyAfterAppendsAreBitwiseEqualToColdEngine) {
  // With no queries before the appends, catch-up has nothing cached and
  // the engine must be bitwise indistinguishable from a cold engine on an
  // identical relation — same chains, same sketches, same values.
  Rng rng(7400);
  for (int trial = 0; trial < 8; ++trial) {
    const uint32_t num_attrs = 3 + static_cast<uint32_t>(rng.UniformU64(3));
    const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(6));
    auto rows = RandomRows(&rng, num_attrs, domain, 30);
    Relation inc = RelationFromRows(num_attrs, rows);
    EntropyEngine engine(&inc);
    for (int k = 0; k < 3; ++k) {
      auto batch = RandomRows(&rng, num_attrs, domain + k, 20);
      ASSERT_TRUE(inc.AppendBatch(batch).ok());
      for (const auto& row : batch) rows.push_back(row);
    }
    Relation cold_r = RelationFromRows(num_attrs, rows);
    EntropyEngine cold(&cold_r);
    const uint64_t all_masks = (uint64_t{1} << num_attrs) - 1;
    // Identical query sequence on both engines, in the same order.
    std::vector<AttrSet> sequence;
    for (int q = 0; q < 24; ++q) {
      sequence.push_back(
          AttrSet::FromMask(1 + rng.UniformU64(all_masks - 1)));
    }
    for (AttrSet s : sequence) {
      ASSERT_EQ(engine.Entropy(s), cold.Entropy(s)) << s.mask();
    }
  }
}

TEST(EpochEngine, CatchUpThenParallelBatchIsCorrect) {
  // After an append, a threaded BatchEntropy must catch up once and fan
  // out safely (the TSan leg runs this test).
  Rng rng(7500);
  Relation r = testing_util::RandomTestRelation(&rng, 5, 4, 120);
  EngineOptions opts;
  opts.num_threads = 4;
  EntropyEngine engine(&r, opts);
  engine.Entropy(AttrSet{0, 1});
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 5, 4, 60)).ok());
  std::vector<AttrSet> sets;
  for (uint64_t mask = 1; mask < 32; ++mask) {
    sets.push_back(AttrSet::FromMask(mask));
  }
  std::vector<double> out = engine.BatchEntropy(sets);
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_NEAR(out[i], EntropyOf(r, sets[i]), 1e-9) << i;
  }
  EXPECT_EQ(engine.Stats().epoch_catchups, 1u);
}

TEST(EpochEngine, ThreadedCatchUpSoakIsBitwiseEqualToSerial) {
  // The parallel EXTEND fan-out (refine_threads > 1 fans claimed entries
  // out level-by-level on the pool) must publish a cache — and serve
  // values — bitwise equal to the serial catch-up. Two engines over
  // identical relations run the same append/query schedule, one with
  // parallel catch-up and one pinned serial; every served value must be
  // EQ, and the threaded engine's final cache must equal the cold replay
  // exactly. The TSan leg runs this file, so the fan-out's memory
  // ordering (level barriers, atomic counters, shared parent reads) is
  // exercised under the race detector.
  Rng rng(7600);
  for (int trial = 0; trial < 4; ++trial) {
    const uint32_t num_attrs = 4 + static_cast<uint32_t>(rng.UniformU64(2));
    const uint32_t domain = 3 + static_cast<uint32_t>(rng.UniformU64(5));
    auto first = RandomRows(&rng, num_attrs, domain, 60);
    Relation r_par = RelationFromRows(num_attrs, first);
    Relation r_ser = RelationFromRows(num_attrs, first);
    EngineOptions par_opts;
    par_opts.refine_threads = 4;
    EntropyEngine par(&r_par, par_opts);
    EntropyEngine ser(&r_ser);
    const uint64_t all_masks = (uint64_t{1} << num_attrs) - 1;
    const uint32_t batches = 4;
    for (uint32_t k = 0; k < batches; ++k) {
      // Warm a spread of chains so each catch-up claims several entries
      // across several set-size levels (the fan-out's unit of work).
      for (int q = 0; q < 12; ++q) {
        const AttrSet s =
            AttrSet::FromMask(1 + rng.UniformU64(all_masks - 1));
        ASSERT_EQ(par.Entropy(s), ser.Entropy(s))
            << "trial " << trial << " epoch " << k << " mask " << s.mask();
      }
      const auto batch =
          RandomRows(&rng, num_attrs, domain + k,
                     5 + static_cast<uint32_t>(rng.UniformU64(30)));
      ASSERT_TRUE(r_par.AppendBatch(batch).ok());
      ASSERT_TRUE(r_ser.AppendBatch(batch).ok());
    }
    ASSERT_EQ(par.Entropy(AttrSet::FromMask(all_masks)),
              ser.Entropy(AttrSet::FromMask(all_masks)));
    ASSERT_EQ(par.Stats().epoch_catchups, batches);
    EXPECT_EQ(par.Stats().partitions_extended + par.Stats().partitions_replayed,
              ser.Stats().partitions_extended + ser.Stats().partitions_replayed);
    EXPECT_EQ(par.Stats().catchup_dropped, 0u);
    VerifyCachedPartitionsAgainstColdReplay(&par, r_par);
  }
}

// --- Concurrent readers under ingestion ----------------------------------

TEST(EpochConcurrency, PinnedReaderIsBitwiseColdWhileNextEpochLands) {
  // The concurrent-oracle extension of the bitwise property, run
  // deterministically: a reader pinned at epoch k sees EXACTLY the cold
  // answer at epoch k — before, during, and after epoch k+1 is published
  // into the caches. Phase A queries land between the append and the
  // catch-up (the pinned generation is still the published one, so reads
  // cache and evolve exactly like a cold engine over the frozen prefix);
  // phase B queries land after publish (the pinned generation was swept,
  // so every read recomputes from scratch — bitwise equal to a fresh cold
  // engine's first compute).
  Rng rng(7700);
  for (int trial = 0; trial < 5; ++trial) {
    const uint32_t num_attrs = 3 + static_cast<uint32_t>(rng.UniformU64(3));
    const uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(6));
    const uint32_t n0 = 20 + static_cast<uint32_t>(rng.UniformU64(40));
    auto rows = RandomRows(&rng, num_attrs, domain, n0);
    Relation r = RelationFromRows(num_attrs, rows);
    Relation prefix = RelationFromRows(num_attrs, rows);  // frozen copy
    EntropyEngine engine(&r);
    EntropyEngine cold(&prefix);

    const EpochPin pin = engine.Pin();
    ASSERT_EQ(pin.rows, n0);
    ASSERT_EQ(pin.epoch, 0u);
    ASSERT_TRUE(
        r.AppendBatch(RandomRows(&rng, num_attrs, domain + 3,
                                 10 + static_cast<uint32_t>(
                                          rng.UniformU64(30))))
            .ok());

    const uint64_t all_masks = (uint64_t{1} << num_attrs) - 1;
    // Phase A: epoch 1 exists but is unpublished. EntropyAt never catches
    // up, and both engines evolve their caches identically from empty.
    for (int q = 0; q < 16; ++q) {
      const AttrSet s = AttrSet::FromMask(1 + rng.UniformU64(all_masks - 1));
      ASSERT_EQ(engine.EntropyAt(s, pin), cold.Entropy(s)) << s.ToString();
    }
    ASSERT_EQ(engine.Pin().epoch, 0u);

    // Epoch 1 lands: claims and extends phase A's cached partitions,
    // sweeps the pinned generation, publishes the new stamp.
    engine.CatchUp();
    ASSERT_EQ(engine.Pin().epoch, 1u);
    ASSERT_EQ(engine.Pin().rows, r.NumRows());
    ASSERT_EQ(engine.Stats().epoch_catchups, 1u);

    // Phase B: the same pin still serves the cold answer at its epoch.
    for (int q = 0; q < 8; ++q) {
      const AttrSet s = AttrSet::FromMask(1 + rng.UniformU64(all_masks - 1));
      EntropyEngine fresh(&prefix);
      ASSERT_EQ(engine.EntropyAt(s, pin), fresh.Entropy(s)) << s.ToString();
    }
    // And the published epoch serves the grown relation exactly.
    for (uint64_t mask = 1; mask <= all_masks; mask += 3) {
      const AttrSet s = AttrSet::FromMask(mask);
      EXPECT_NEAR(engine.Entropy(s), EntropyOf(r, s), 1e-9) << mask;
    }
    VerifyCachedPartitionsAgainstColdReplay(&engine, r);
  }
}

TEST(EpochConcurrency, PinnedReadersStayExactWhileAppenderPublishes) {
  // The racy form the TSan leg runs: N reader threads pin and query while
  // one appender lands batches, a maintenance thread runs catch-up off the
  // query path, and readers race it cooperatively. Every observed value
  // must match the cold reference at the rows the reader was pinned to —
  // no torn reads, no value from a half-published epoch.
  Rng rng(7800);
  const uint32_t num_attrs = 4;
  const uint32_t domain = 3;
  const uint32_t kBatches = 5;
  auto rows = RandomRows(&rng, num_attrs, domain, 80);
  std::vector<std::vector<std::vector<uint32_t>>> batches;
  for (uint32_t k = 0; k < kBatches; ++k) {
    batches.push_back(RandomRows(&rng, num_attrs, domain + k, 40));
  }
  // Cold reference at every publishable row count (appends are atomic, so
  // a pin can only ever name a batch boundary).
  std::unordered_map<uint64_t, std::vector<double>> expected;
  {
    auto prefix = rows;
    auto record = [&] {
      Relation cold = RelationFromRows(num_attrs, prefix);
      std::vector<double> vals(16, 0.0);
      for (uint64_t mask = 1; mask < 16; ++mask) {
        vals[mask] = EntropyOf(cold, AttrSet::FromMask(mask));
      }
      expected[prefix.size()] = std::move(vals);
    };
    record();
    for (const auto& batch : batches) {
      prefix.insert(prefix.end(), batch.begin(), batch.end());
      record();
    }
  }

  Relation r = RelationFromRows(num_attrs, rows);
  EntropyEngine engine(&r);
  engine.Entropy(AttrSet{0, 1});  // something cached for catch-up to claim

  struct Obs {
    uint64_t rows;
    uint32_t mask;
    double h;
  };
  constexpr int kReaders = 4;
  std::vector<std::vector<Obs>> observed(kReaders);
  std::atomic<bool> done{false};
  {
    EpochMaintenance maintenance(&engine, std::chrono::microseconds(50));
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&engine, &observed, &done, t] {
        Rng trng(9000 + static_cast<uint64_t>(t));
        auto& out = observed[static_cast<size_t>(t)];
        while (!done.load(std::memory_order_acquire)) {
          const EpochPin pin = engine.Pin();
          for (int q = 0; q < 3; ++q) {
            const uint32_t mask =
                1 + static_cast<uint32_t>(trng.UniformU64(15));
            out.push_back({pin.rows, mask,
                           engine.EntropyAt(AttrSet::FromMask(mask), pin)});
          }
          // Cooperative racer: readers may run catch-up themselves; the
          // try-lock makes the race with the maintenance thread benign.
          if (trng.Bernoulli(0.25)) engine.CatchUp();
        }
      });
    }
    for (const auto& batch : batches) {
      ASSERT_TRUE(r.AppendBatch(batch).ok());
      maintenance.Poke();
      std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
    done.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();
  }

  // Validate on the main thread (gtest assertions stay single-threaded).
  size_t checked = 0;
  for (const auto& per_thread : observed) {
    for (const Obs& o : per_thread) {
      auto it = expected.find(o.rows);
      ASSERT_NE(it, expected.end()) << "pin at non-boundary rows " << o.rows;
      EXPECT_NEAR(o.h, it->second[o.mask], 1e-9)
          << "rows " << o.rows << " mask " << o.mask;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  // The engine lands on the final epoch and serves it exactly.
  engine.CatchUp();
  EXPECT_EQ(engine.Pin().rows, r.NumRows());
  const std::vector<double>& final_vals = expected.at(r.NumRows());
  for (uint64_t mask = 1; mask < 16; ++mask) {
    EXPECT_NEAR(engine.Entropy(AttrSet::FromMask(mask)), final_vals[mask],
                1e-9)
        << mask;
  }
}

TEST(EpochEngine, ExtensionAndReplayPathsBothRun) {
  // Sanity on the stats: a no-fuse engine with a stable cache should
  // delta-extend its chains; a forced-fuse engine leaves chain gaps whose
  // catch-up replays. (Exact counts are implementation detail; "the path
  // ran" is the invariant worth pinning.)
  Rng rng(7600);
  auto rows = RandomRows(&rng, 5, 4, 80);
  Relation r1 = RelationFromRows(5, rows);
  EngineOptions nofuse;
  nofuse.max_fuse_columns = 1;
  EntropyEngine e1(&r1, nofuse);
  e1.Entropy(AttrSet{0, 1, 2});
  ASSERT_TRUE(r1.AppendBatch(RandomRows(&rng, 5, 4, 40)).ok());
  e1.Entropy(AttrSet{0, 1, 2});
  EXPECT_GT(e1.Stats().partitions_extended, 0u);

  Relation r2 = RelationFromRows(5, rows);
  EngineOptions fused;
  fused.max_fuse_columns = 4;
  EntropyEngine e2(&r2, fused);
  e2.PrewarmSubsets({AttrSet{0, 1, 2, 3}});
  ASSERT_TRUE(r2.AppendBatch(RandomRows(&rng, 5, 4, 40)).ok());
  e2.Entropy(AttrSet{0, 1, 2, 3});
  EXPECT_GT(e2.Stats().partitions_replayed, 0u);
}

}  // namespace
}  // namespace ajd
