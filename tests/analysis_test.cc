#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/worstcase.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(AnalyzeAjd, LosslessInstanceFlagsLossless) {
  Rng rng(140);
  Instance inst = MakeLosslessMvdInstance(8, 8, 4, 3, 3, &rng).value();
  AjdAnalysis a = AnalyzeAjd(inst.relation, inst.tree).value();
  EXPECT_TRUE(a.lossless);
  EXPECT_NEAR(a.j, 0.0, 1e-10);
  EXPECT_NEAR(a.kl, 0.0, 1e-10);
  EXPECT_EQ(a.loss.rho, 0.0);
  for (const MvdStat& m : a.support) {
    EXPECT_NEAR(m.cmi, 0.0, 1e-10);
    EXPECT_EQ(m.rho, 0.0);
  }
}

TEST(AnalyzeAjd, DiagonalInstanceReportsTightBound) {
  Instance inst = MakeDiagonalInstance(20).value();
  AjdAnalysis a = AnalyzeAjd(inst.relation, inst.tree).value();
  EXPECT_FALSE(a.lossless);
  EXPECT_NEAR(a.j, std::log(20.0), 1e-9);
  EXPECT_NEAR(a.rho_lower_bound, 19.0, 1e-6);
  EXPECT_NEAR(a.loss.rho, 19.0, 1e-9);
}

TEST(AnalyzeAjd, InternalConsistencyOnRandomInputs) {
  Rng rng(141);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    AjdAnalysis a = AnalyzeAjd(r, t).value();
    // Theorem 3.2 and the chain rule agree with J.
    EXPECT_NEAR(a.j, a.kl, 1e-8);
    EXPECT_NEAR(a.j, a.chain_rule_j, 1e-8);
    // Theorem 2.2 upper side.
    EXPECT_LE(a.j, a.sum_dfs_cmi + 1e-8);
    // Lemma 4.1.
    EXPECT_LE(a.j, a.loss.log1p_rho + 1e-8);
    EXPECT_LE(a.rho_lower_bound, a.loss.rho + 1e-6);
    // Proposition 5.1 — typical case; the stated bound is not universal
    // (see Prop51.CounterexampleViolatesStatedBound) but holds for these
    // seeded random inputs.
    EXPECT_LE(a.loss.log1p_rho, a.prop51_bound + 1e-8);
    // Support size.
    EXPECT_EQ(a.support.size(), t.NumNodes() - 1);
    // Active-domain sizes are positive.
    for (const MvdStat& m : a.support) {
      EXPECT_GE(m.d_a, 1u);
      EXPECT_GE(m.d_b, 1u);
      EXPECT_GE(m.d_c, 1u);
      EXPECT_GT(m.epsilon_star, 0.0);
    }
  }
}

TEST(AnalyzeAjd, RejectsBadDelta) {
  Instance inst = MakeDiagonalInstance(4).value();
  EXPECT_FALSE(AnalyzeAjd(inst.relation, inst.tree, 0.0).ok());
  EXPECT_FALSE(AnalyzeAjd(inst.relation, inst.tree, 1.0).ok());
}

TEST(AnalyzeAjd, ToStringMentionsKeyQuantities) {
  Instance inst = MakeDiagonalInstance(6).value();
  AjdAnalysis a = AnalyzeAjd(inst.relation, inst.tree).value();
  std::string s = a.ToString();
  EXPECT_NE(s.find("J-measure"), std::string::npos);
  EXPECT_NE(s.find("Lemma 4.1"), std::string::npos);
  EXPECT_NE(s.find("Prop 5.1"), std::string::npos);
  EXPECT_NE(s.find("lossy"), std::string::npos);
}

TEST(AnalyzeAjd, SingleBagTreeIsAlwaysLossless) {
  Rng rng(142);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 30);
  JoinTree t = JoinTree::Make({r.schema().AllAttrs()}, {}).value();
  AjdAnalysis a = AnalyzeAjd(r, t).value();
  EXPECT_TRUE(a.lossless);
  EXPECT_NEAR(a.j, 0.0, 1e-10);
  EXPECT_TRUE(a.support.empty());
}

}  // namespace
}  // namespace ajd
