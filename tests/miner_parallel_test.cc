// Determinism of the parallelized mining hot path: threaded engines batch
// candidate scoring, but selection always happens after a batch completes,
// in mask order, so the mined tree and every reported score must be
// independent of the thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "discovery/miner.h"
#include "engine/analysis_session.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// Randomized matrix over attrs/rows/threads: for every relation the serial
// rendering is the reference and every thread count must reproduce it
// byte for byte (FormatDouble rounds away the <= 1e-12 fp-accumulation
// wiggle different cache-fill orders can produce).
TEST(MinerParallel, MatchesSerialAcrossMatrix) {
  Rng rng(4242);
  const uint32_t attr_counts[] = {4, 5, 6};
  const uint32_t row_counts[] = {50, 140};
  const uint32_t thread_counts[] = {2, 4};
  for (uint32_t attrs : attr_counts) {
    for (uint32_t rows : row_counts) {
      Relation r = testing_util::RandomTestRelation(&rng, attrs, 3, rows);
      MinerOptions options;
      options.max_bag_size = 2;
      options.seed = 99;
      options.num_threads = 1;
      MinerReport serial = MineJoinTree(r, options).value();
      const std::string expected = serial.ToString(r.schema());
      for (uint32_t threads : thread_counts) {
        options.num_threads = threads;
        MinerReport threaded = MineJoinTree(r, options).value();
        EXPECT_EQ(threaded.ToString(r.schema()), expected)
            << "attrs=" << attrs << " rows=" << rows
            << " threads=" << threads;
      }
    }
  }
}

// 18 loose attributes with size-<=1 separators put ~17 units in every
// neighborhood, which overflows the exhaustive mask space and forces the
// hill-climb path. The batched neighborhood scoring (threaded) must walk
// the exact trajectory of flip-at-a-time scoring (serial): same restarts,
// same steepest-descent flip choices, same final report.
TEST(MinerParallel, BatchedHillClimbMatchesFlipAtATime) {
  Rng rng(777);
  Relation r = testing_util::RandomTestRelation(&rng, 18, 2, 90);
  MinerOptions options;
  options.max_separator_size = 1;
  options.max_bag_size = 12;
  options.hill_climb_restarts = 2;
  options.seed = 7;
  options.num_threads = 1;
  MinerReport serial = MineJoinTree(r, options).value();
  ASSERT_GE(serial.splits.size(), 1u);
  options.num_threads = 4;
  MinerReport threaded = MineJoinTree(r, options).value();
  EXPECT_EQ(threaded.ToString(r.schema()), serial.ToString(r.schema()));
}

// The session overload must be just as thread-count-agnostic, and the
// session arriving pre-warmed (a prior mine over the same relation) must
// not change the answer either.
TEST(MinerParallel, WarmSessionDoesNotChangeTheAnswer) {
  Rng rng(4711);
  Relation r = testing_util::RandomTestRelation(&rng, 5, 3, 120);
  MinerOptions options;
  options.max_bag_size = 2;
  MinerReport cold = MineJoinTree(r, options).value();

  EngineOptions engine_options;
  engine_options.num_threads = 4;
  AnalysisSession session(engine_options);
  MinerReport first = MineJoinTree(&session, r, options).value();
  MinerReport again = MineJoinTree(&session, r, options).value();
  EXPECT_EQ(first.ToString(r.schema()), cold.ToString(r.schema()));
  EXPECT_EQ(again.ToString(r.schema()), cold.ToString(r.schema()));
}

}  // namespace
}  // namespace ajd
