// Tests for the columnar entropy engine (engine/): ColumnStore dense
// coding, stripped-partition algebra, randomized equivalence of
// EntropyEngine against the legacy per-call EntropyOf, cache/batch/budget
// behavior, and cross-consumer reuse through an AnalysisSession.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/analysis.h"
#include "core/groupwise.h"
#include "discovery/miner.h"
#include "engine/analysis_session.h"
#include "engine/column_store.h"
#include "engine/entropy_engine.h"
#include "engine/partition.h"
#include "engine/refine_kernels.h"
#include "engine/worker_pool.h"
#include "info/entropy.h"
#include "random/rng.h"
#include "test_util.h"

namespace ajd {
namespace {

// A random relation kept as a multiset (duplicate rows preserved), so the
// empirical distribution is genuinely weighted.
Relation RandomMultisetRelation(Rng* rng, uint32_t num_attrs, uint32_t domain,
                                uint32_t rows) {
  std::vector<uint64_t> dims(num_attrs, domain);
  Schema schema = Schema::MakeSynthetic(dims).value();
  RelationBuilder b(schema);
  std::vector<uint32_t> row(num_attrs);
  for (uint32_t i = 0; i < rows; ++i) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
    b.AddRow(row);
  }
  return std::move(b).Build(/*dedupe=*/false);
}

TEST(ColumnStore, DenseCodesPreserveEquality) {
  Rng rng(900);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 5, 60);
  ColumnStore store(&r);
  ASSERT_EQ(store.NumAttrs(), r.NumAttrs());
  ASSERT_EQ(store.NumRows(), r.NumRows());
  for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
    const Column& col = store.column(a);
    ASSERT_EQ(col.codes.size(), r.NumRows());
    for (uint64_t i = 0; i < r.NumRows(); ++i) {
      EXPECT_LT(col.codes[i], col.cardinality);
      for (uint64_t j = i + 1; j < r.NumRows(); ++j) {
        EXPECT_EQ(r.At(i, a) == r.At(j, a), col.codes[i] == col.codes[j]);
      }
    }
  }
}

TEST(ColumnStore, DensifiesSparseCodes) {
  // Raw codes far above the row count force the hash-map remap path.
  Schema s = Schema::Make({{"A", 0}}).value();
  Relation r = Relation::FromRows(
                   s, {{4000000000u}, {7u}, {4000000000u}, {123456789u}})
                   .value();
  ColumnStore store(&r);
  EXPECT_EQ(store.column(0).cardinality, 3u);
}

TEST(Partition, TrivialAndColumnBasics) {
  EXPECT_EQ(Partition::Trivial(0).NumBlocks(), 0u);
  EXPECT_EQ(Partition::Trivial(1).NumBlocks(), 0u);  // singleton stripped
  Partition all = Partition::Trivial(5);
  ASSERT_EQ(all.NumBlocks(), 1u);
  EXPECT_EQ(all.BlockSize(0), 5u);
  EXPECT_NEAR(all.EntropyNats(5), 0.0, 1e-12);

  Column col = MakeOwnedColumn({0, 1, 0, 2, 1, 0}, 3);
  Partition p = Partition::OfColumn(col);
  // Code 0 has 3 rows, code 1 has 2; code 2 is a stripped singleton.
  ASSERT_EQ(p.NumBlocks(), 2u);
  EXPECT_EQ(p.NumStrippedRows(), 5u);
  // H = ln 6 - (3 ln 3 + 2 ln 2) / 6.
  EXPECT_NEAR(p.EntropyNats(6),
              std::log(6.0) - (3 * std::log(3.0) + 2 * std::log(2.0)) / 6.0,
              1e-12);
}

TEST(Partition, RefinementMatchesDirectGrouping) {
  Rng rng(901);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 40);
    ColumnStore store(&r);
    Partition p01 =
        Partition::OfColumn(store.column(0)).RefinedBy(store.column(1));
    // Refining {0} by column 1 must give the grouping of {0,1}: compare
    // entropies against the legacy path (same formula, same data).
    EXPECT_NEAR(p01.EntropyNats(r.NumRows()),
                EntropyOf(r, AttrSet{0, 1}), 1e-9);
    Partition p012 = p01.RefinedBy(store.column(2));
    EXPECT_NEAR(p012.EntropyNats(r.NumRows()),
                EntropyOf(r, AttrSet{0, 1, 2}), 1e-9);
  }
}

TEST(EntropyEngine, RandomizedEquivalenceWithEntropyOf) {
  Rng rng(902);
  for (int trial = 0; trial < 25; ++trial) {
    uint32_t num_attrs = 2 + static_cast<uint32_t>(rng.UniformU64(4));
    uint32_t domain = 2 + static_cast<uint32_t>(rng.UniformU64(5));
    uint32_t rows = 10 + static_cast<uint32_t>(rng.UniformU64(80));
    Relation r = rng.Bernoulli(0.5)
                     ? testing_util::RandomTestRelation(&rng, num_attrs,
                                                        domain, rows)
                     : RandomMultisetRelation(&rng, num_attrs, domain, rows);
    EntropyEngine engine(&r);
    const uint32_t limit = uint32_t{1} << num_attrs;
    // Every subset, queried in random order (exercises subset reuse both
    // up and down the lattice), including empty and full sets.
    std::vector<uint32_t> masks(limit);
    for (uint32_t m = 0; m < limit; ++m) masks[m] = m;
    rng.Shuffle(&masks);
    for (uint32_t m : masks) {
      AttrSet attrs = AttrSet::FromMask(m);
      EXPECT_NEAR(engine.Entropy(attrs), EntropyOf(r, attrs), 1e-9)
          << "attrs=" << attrs.ToString() << " trial=" << trial;
    }
    // Re-query everything: all hits, same values.
    for (uint32_t m : masks) {
      AttrSet attrs = AttrSet::FromMask(m);
      EXPECT_NEAR(engine.Entropy(attrs), EntropyOf(r, attrs), 1e-9);
    }
    EngineStats stats = engine.Stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.base_reuses, 0u);
  }
}

TEST(EntropyEngine, EmptyAndDegenerateInputs) {
  Schema s = Schema::Make({{"A", 2}, {"B", 2}}).value();
  Relation empty = Relation::FromRows(s, {}).value();
  EntropyEngine engine(&empty);
  EXPECT_EQ(engine.Entropy(AttrSet{0, 1}), 0.0);
  EXPECT_EQ(engine.Entropy(AttrSet()), 0.0);

  Relation one = Relation::FromRows(s, {{1, 0}}).value();
  EntropyEngine engine1(&one);
  EXPECT_NEAR(engine1.Entropy(AttrSet{0, 1}), 0.0, 1e-12);
}

TEST(EntropyEngine, BatchEntropyMatchesSerialAndUsesThreads) {
  Rng rng(903);
  Relation r = testing_util::RandomTestRelation(&rng, 5, 4, 200);
  EngineOptions options;
  options.num_threads = 4;  // force a real pool regardless of the host
  EntropyEngine engine(&r, options);
  std::vector<AttrSet> sets;
  for (uint32_t m = 0; m < 32; ++m) sets.push_back(AttrSet::FromMask(m));
  std::vector<double> batch = engine.BatchEntropy(sets);
  ASSERT_EQ(batch.size(), sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_NEAR(batch[i], EntropyOf(r, sets[i]), 1e-9);
  }
  EXPECT_EQ(engine.Stats().queries, 31u);  // empty set short-circuits
}

TEST(EntropyEngine, CmiMatchesLegacyCalculatorSemantics) {
  Rng rng(904);
  for (int trial = 0; trial < 15; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 60);
    EntropyEngine engine(&r);
    for (int k = 0; k < 12; ++k) {
      AttrSet a = AttrSet::FromMask(rng.UniformU64(16));
      AttrSet b = AttrSet::FromMask(rng.UniformU64(16));
      AttrSet c = AttrSet::FromMask(rng.UniformU64(16));
      double via_engine = engine.ConditionalMutualInformation(a, b, c);
      double via_entropy_of =
          EntropyOf(r, a.Union(c)) + EntropyOf(r, b.Union(c)) -
          EntropyOf(r, a.Union(b).Union(c)) - EntropyOf(r, c);
      EXPECT_GE(via_engine, 0.0);
      EXPECT_NEAR(via_engine, std::max(via_entropy_of, 0.0), 1e-9);
    }
  }
}

TEST(EntropyEngine, PartitionBudgetEvicts) {
  Rng rng(905);
  Relation r = testing_util::RandomTestRelation(&rng, 6, 3, 300);
  EngineOptions options;
  options.cache_budget_bytes = 4096;  // deliberately tiny
  EntropyEngine engine(&r, options);
  for (uint32_t m = 1; m < 64; ++m) {
    engine.Entropy(AttrSet::FromMask(m));
  }
  EXPECT_LE(engine.PartitionBytes(), options.cache_budget_bytes);
  EXPECT_GT(engine.Stats().evictions, 0u);
  // Entropy values stay cached and correct even with partitions evicted.
  for (uint32_t m = 1; m < 64; ++m) {
    AttrSet attrs = AttrSet::FromMask(m);
    EXPECT_NEAR(engine.Entropy(attrs), EntropyOf(r, attrs), 1e-9);
  }
}

TEST(AnalysisSession, MinerAndAnalysisShareOneEngine) {
  Rng rng(906);
  Relation r = testing_util::RandomTestRelation(&rng, 5, 3, 120);

  AnalysisSession session;
  MinerReport mined = MineJoinTree(&session, r).value();
  EXPECT_EQ(session.NumRelations(), 1u);

  EngineStats after_mining = session.TotalStats();
  EXPECT_GT(after_mining.queries, 0u);
  size_t cached_after_mining = session.EngineFor(r).CacheSize();
  EXPECT_GT(cached_after_mining, 0u);

  AjdAnalysis analysis = AnalyzeAjd(&session, r, mined.tree).value();
  EngineStats after_analysis = session.TotalStats();
  // The analysis re-walks terms the miner already evaluated: the hit
  // count must strictly grow, and the J-measures must agree.
  EXPECT_GT(after_analysis.hits, after_mining.hits);
  EXPECT_NEAR(analysis.j, mined.j, 1e-9);
  EXPECT_EQ(session.NumRelations(), 1u);

  // The same tree analyzed without the session gives identical numbers.
  AjdAnalysis cold = AnalyzeAjd(r, mined.tree).value();
  EXPECT_NEAR(cold.j, analysis.j, 1e-12);
  EXPECT_NEAR(cold.sum_dfs_cmi, analysis.sum_dfs_cmi, 1e-12);
  EXPECT_NEAR(cold.loss.rho, analysis.loss.rho, 1e-12);
}

TEST(AnalysisSession, GroupwiseEngineCmiMatchesMixture) {
  Rng rng(907);
  for (int trial = 0; trial < 10; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 50);
    AnalysisSession session;
    GroupwiseMvdReport report =
        AnalyzeMvdGroupwise(&session, r, AttrSet{0}, AttrSet{1}, AttrSet{2})
            .value();
    // Eq. 336: the engine-side global CMI equals the groupwise mixture.
    double engine_cmi = session.EngineFor(r).ConditionalMutualInformation(
        AttrSet{0}, AttrSet{1}, AttrSet{2});
    EXPECT_NEAR(engine_cmi, report.mixture_cmi, 1e-9);
    // The four Eq. (4) terms are now cached for whoever uses the session
    // next.
    EXPECT_GE(session.EngineFor(r).CacheSize(), 4u);
  }
}

TEST(AnalysisSession, ParallelMinerMatchesSerial) {
  // A parallel-batch session takes the miner's pre-warm path in
  // BestBipartition (dead under the serial default); the mined tree and
  // scores must match the serial run.
  Rng rng(909);
  Relation r = testing_util::RandomTestRelation(&rng, 6, 3, 150);
  AnalysisSession serial_session;
  EngineOptions parallel;
  parallel.num_threads = 4;
  AnalysisSession parallel_session(parallel);
  MinerReport a = MineJoinTree(&serial_session, r).value();
  MinerReport b = MineJoinTree(&parallel_session, r).value();
  ASSERT_EQ(a.tree.NumNodes(), b.tree.NumNodes());
  for (uint32_t v = 0; v < a.tree.NumNodes(); ++v) {
    EXPECT_EQ(a.tree.bag(v), b.tree.bag(v));
  }
  EXPECT_NEAR(a.j, b.j, 1e-9);
  EXPECT_NEAR(a.sum_split_cmi, b.sum_split_cmi, 1e-9);
}

TEST(EntropyEngine, PrewarmSubsetsSeedsPartitionsAndPreservesValues) {
  Rng rng(911);
  Relation r = testing_util::RandomTestRelation(&rng, 5, 4, 120);
  EntropyEngine engine(&r);
  // Prewarm materializes the full partition of each set (plain Entropy
  // would take the fused entropy-only pass on the last step), and ignores
  // empty sets and duplicates.
  std::vector<AttrSet> seeds = {AttrSet{0}, AttrSet{0, 1}, AttrSet{0, 1},
                                AttrSet()};
  engine.PrewarmSubsets(seeds);
  EXPECT_GE(engine.PartitionCacheSize(), 2u);
  // Values answered after the prewarm match the reference path.
  for (AttrSet s : {AttrSet{0}, AttrSet{0, 1}, AttrSet{0, 1, 2}}) {
    EXPECT_NEAR(engine.Entropy(s), EntropyOf(r, s), 1e-9);
  }
  // A superset query now refines from the warmed ancestor instead of
  // rebuilding from a raw column.
  EngineStats before = engine.Stats();
  engine.Entropy(AttrSet{0, 1, 3});
  EngineStats after = engine.Stats();
  EXPECT_GT(after.base_reuses, before.base_reuses);
}

TEST(EntropyEngine, PrewarmedEntropyValueIsUnchanged) {
  // Prewarming after a value is cached must not overwrite it, and
  // prewarming before must yield the same number the fused path would
  // report (to fp accumulation order).
  Rng rng(912);
  Relation r = RandomMultisetRelation(&rng, 4, 3, 200);
  EntropyEngine cold(&r);
  double fused = cold.Entropy(AttrSet{0, 1, 2});
  EntropyEngine warmed(&r);
  warmed.PrewarmSubsets({AttrSet{0, 1, 2}});
  EXPECT_NEAR(warmed.Entropy(AttrSet{0, 1, 2}), fused, 1e-9);
  cold.PrewarmSubsets({AttrSet{0, 1, 2}});
  EXPECT_EQ(cold.Entropy(AttrSet{0, 1, 2}), fused);
}

TEST(AnalysisSession, ReleaseDropsTheEngine) {
  Rng rng(913);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 50);
  AnalysisSession session;
  session.EngineFor(r).Entropy(AttrSet{0, 1});
  EXPECT_EQ(session.NumRelations(), 1u);
  EXPECT_TRUE(session.Release(r));
  EXPECT_EQ(session.NumRelations(), 0u);
  EXPECT_FALSE(session.Release(r));  // nothing left to drop
  // A fresh engine serves the relation again after the release.
  EXPECT_NEAR(session.EngineFor(r).Entropy(AttrSet{0, 1}),
              EntropyOf(r, AttrSet{0, 1}), 1e-9);
}

// --- Refinement kernel suite (engine/refine_kernels.h) ------------------

// Exact partition equality: block count, block boundaries, block order,
// and row order — the contract every kernel strategy must honor.
void ExpectSamePartition(const Partition& want, const Partition& got,
                         const std::string& what) {
  ASSERT_EQ(want.NumBlocks(), got.NumBlocks()) << what;
  ASSERT_EQ(want.NumStrippedRows(), got.NumStrippedRows()) << what;
  for (uint32_t b = 0; b < want.NumBlocks(); ++b) {
    ASSERT_EQ(want.BlockSize(b), got.BlockSize(b)) << what << " block " << b;
    const uint32_t* pw = want.BlockBegin(b);
    const uint32_t* pg = got.BlockBegin(b);
    for (uint32_t i = 0; i < want.BlockSize(b); ++i) {
      ASSERT_EQ(pw[i], pg[i]) << what << " block " << b << " row " << i;
    }
  }
}

// A synthetic dense column; skew > 0 concentrates mass on low codes.
Column SyntheticColumn(Rng* rng, uint32_t rows, uint32_t cardinality,
                       double skew) {
  std::vector<uint32_t> codes(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    if (skew == 0.0) {
      codes[i] = static_cast<uint32_t>(rng->UniformU64(cardinality));
    } else {
      const double u = rng->NextDouble();
      uint32_t c = static_cast<uint32_t>(std::pow(u, 1.0 + skew) *
                                         cardinality);
      codes[i] = c >= cardinality ? cardinality - 1 : c;
    }
  }
  return MakeOwnedColumn(std::move(codes), cardinality);
}

TEST(RefineKernels, AllStrategiesMatchScalarAcrossCardinalityAndSkew) {
  Rng rng(920);
  const uint32_t kRows = 600;
  for (uint32_t card :
       {2u, 7u, 64u, 300u, 5000u, kRows, 3 * kRows}) {
    for (double skew : {0.0, 2.5}) {
      Column col = SyntheticColumn(&rng, kRows, card, skew);
      for (uint32_t base_card : {1u, 5u, 40u}) {
        Partition base =
            base_card == 1
                ? Partition::Trivial(kRows)
                : Partition::OfColumn(
                      SyntheticColumn(&rng, kRows, base_card, 0.0));
        const std::string what = "card=" + std::to_string(card) +
                                 " skew=" + std::to_string(skew) +
                                 " base=" + std::to_string(base_card);
        Partition ref = base.RefinedBy(col, RefineKernel::kDense);
        const double ref_h =
            base.RefinedEntropy(col, kRows, RefineKernel::kDense);
        for (RefineKernel k :
             {RefineKernel::kMid, RefineKernel::kSort, RefineKernel::kAuto}) {
          ExpectSamePartition(ref, base.RefinedBy(col, k), what);
          // Entropies must agree BITWISE: every kernel accumulates the
          // c ln c terms in the same (first-occurrence) order.
          EXPECT_EQ(ref_h, base.RefinedEntropy(col, kRows, k)) << what;
        }
      }
    }
  }
}

TEST(RefineKernels, FusedMatchesChainExactly) {
  Rng rng(921);
  const uint32_t kRows = 500;
  for (int trial = 0; trial < 10; ++trial) {
    const size_t k = 2 + static_cast<size_t>(rng.UniformU64(3));  // 2..4
    std::vector<Column> cols;
    std::vector<const Column*> ptrs;
    uint32_t product = 1;
    for (size_t j = 0; j < k; ++j) {
      const uint32_t card = 2 + static_cast<uint32_t>(rng.UniformU64(7));
      cols.push_back(SyntheticColumn(&rng, kRows, card,
                                     rng.Bernoulli(0.5) ? 0.0 : 2.0));
      product *= card;
    }
    for (const Column& c : cols) ptrs.push_back(&c);
    Partition base =
        Partition::OfColumn(SyntheticColumn(&rng, kRows, 6, 0.0));

    // The reference chain, one RefinedBy per column in order.
    Partition chain = base;
    for (size_t j = 0; j < k; ++j) chain = chain.RefinedBy(cols[j]);
    Partition chain_penultimate = base;
    for (size_t j = 0; j + 1 < k; ++j) {
      chain_penultimate = chain_penultimate.RefinedBy(cols[j]);
    }
    const double chain_h =
        chain_penultimate.RefinedEntropy(cols[k - 1], kRows);

    ExpectSamePartition(chain, base.RefinedByAll(ptrs.data(), k, product),
                        "RefinedByAll k=" + std::to_string(k));
    EXPECT_EQ(chain_h,
              base.RefinedEntropyAll(ptrs.data(), k, product, kRows))
        << "RefinedEntropyAll k=" << k;

    if (k == 2) {
      Partition fin;
      const double fin_h = base.RefinedByWithEntropy(
          cols[0], cols[1], product, kRows, &fin);
      ExpectSamePartition(chain_penultimate, fin, "RefinedByWithEntropy");
      EXPECT_EQ(chain_h, fin_h) << "RefinedByWithEntropy entropy";
    }
  }
}

TEST(Partition, OfColumnNearKeySortPathMatchesCountingConstruction) {
  // Dense-coded near-key columns (cardinality >= rows) take the sort path;
  // for dense codes (assigned in first-occurrence order, as ColumnStore
  // produces them) it must equal refining the trivial partition — which is
  // provably what the counting construction emits.
  Rng rng(922);
  const uint32_t kRows = 400;
  std::vector<uint32_t> codes(kRows);
  uint32_t cardinality = 0;
  std::unordered_map<uint64_t, uint32_t> dense;
  for (uint32_t i = 0; i < kRows; ++i) {
    // ~70% unique raw values, densified first-occurrence.
    const uint64_t raw = rng.UniformU64(3 * kRows);
    auto [it, inserted] = dense.emplace(raw, cardinality);
    if (inserted) ++cardinality;
    codes[i] = it->second;
  }
  cardinality = std::max(cardinality, kRows);  // force sort path
  ASSERT_GE(cardinality, kRows);
  Column col = MakeOwnedColumn(std::move(codes), cardinality);
  Partition via_of_column = Partition::OfColumn(col);
  Partition via_refine =
      Partition::Trivial(kRows).RefinedBy(col, RefineKernel::kDense);
  ExpectSamePartition(via_refine, via_of_column, "near-key OfColumn");
}

TEST(ColumnStore, ComposeColumnsInducesTheChainGrouping) {
  // A materialized composite column must group rows exactly like refining
  // by its parts in sequence: same stripped mass, same block multiset —
  // OfColumn emits composite-code order rather than chain order, so
  // compare the order-free quantities (mass, block count, entropy).
  Rng rng(926);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 120);
  ColumnStore store(&r);
  Column composite = store.ComposeColumns({0, 2});
  EXPECT_EQ(composite.cardinality,
            store.column(0).cardinality * store.column(2).cardinality);
  Partition via_composite = Partition::OfColumn(composite);
  Partition via_chain =
      Partition::OfColumn(store.column(0)).RefinedBy(store.column(2));
  EXPECT_EQ(via_chain.NumStrippedRows(), via_composite.NumStrippedRows());
  EXPECT_EQ(via_chain.NumBlocks(), via_composite.NumBlocks());
  // Block ORDER differs between the two, so the c ln c accumulation order
  // does too: compare to fp tolerance, not bitwise.
  EXPECT_NEAR(via_chain.EntropyNats(r.NumRows()),
              via_composite.EntropyNats(r.NumRows()), 1e-12);
}

TEST(ColumnStore, DistinctSketchSeparatesSkewFromUniform) {
  Rng rng(923);
  const uint32_t kRows = 4000;
  const uint32_t kCard = 256;
  Column uniform = SyntheticColumn(&rng, kRows, kCard, 0.0);
  Column skewed = SyntheticColumn(&rng, kRows, kCard, 4.0);
  DistinctSketch u, s;
  {
    // Build sketches through a store so the lazy path is exercised.
    std::vector<uint64_t> dims = {kCard, kCard};
    Schema schema = Schema::MakeSynthetic(dims).value();
    RelationBuilder b(schema);
    for (uint32_t i = 0; i < kRows; ++i) {
      b.AddRow({uniform.codes[i], skewed.codes[i]});
    }
    Relation r = std::move(b).Build(/*dedupe=*/false);
    ColumnStore store(&r);
    u = store.sketch(0);
    s = store.sketch(1);
  }
  // Both estimates are bounded and monotone in the block mass.
  double prev_u = 0.0, prev_s = 0.0;
  for (uint64_t m : {4ull, 16ull, 64ull, 256ull, 1024ull, 4000ull}) {
    const double eu = u.EstimateDistinct(m, kCard);
    const double es = s.EstimateDistinct(m, kCard);
    EXPECT_LE(eu, kCard);
    EXPECT_LE(es, kCard);
    EXPECT_GE(eu, prev_u);
    EXPECT_GE(es, prev_s);
    prev_u = eu;
    prev_s = es;
  }
  // On a head-heavy column values show up far slower: at moderate masses
  // the skewed estimate must sit clearly below the uniform one, which is
  // exactly the ordering signal the engine uses.
  EXPECT_LT(s.EstimateDistinct(256, kCard),
            0.8 * u.EstimateDistinct(256, kCard));
}

TEST(EntropyEngine, ForcedAndPressureFusionPreserveValues) {
  Rng rng(924);
  Relation r = RandomMultisetRelation(&rng, 6, 3, 300);
  // Forced fusion: every multi-column tail is applied as one composite
  // pass. Values must match the reference path to fp tolerance.
  EngineOptions forced;
  forced.max_fuse_columns = 4;
  EntropyEngine fused_engine(&r, forced);
  // Pressure-gated fusion: a tiny partition budget keeps the cache under
  // eviction pressure, which turns adaptive fusion on mid-run.
  EngineOptions tiny;
  tiny.cache_budget_bytes = 2048;
  EntropyEngine pressured(&r, tiny);
  for (uint32_t m = 1; m < 64; ++m) {
    AttrSet attrs = AttrSet::FromMask(m);
    const double want = EntropyOf(r, attrs);
    EXPECT_NEAR(fused_engine.Entropy(attrs), want, 1e-9) << attrs.ToString();
    EXPECT_NEAR(pressured.Entropy(attrs), want, 1e-9) << attrs.ToString();
  }
  EXPECT_GT(fused_engine.Stats().fused_refinements, 0u);
}

// --- Shared WorkerPool (engine/worker_pool.h) ---------------------------

TEST(WorkerPool, SharedAcrossEnginesMatchesPrivatePools) {
  Rng rng(925);
  Relation r1 = testing_util::RandomTestRelation(&rng, 5, 3, 150);
  Relation r2 = RandomMultisetRelation(&rng, 5, 4, 120);

  // One explicit pool serving every engine of one session.
  auto pool = std::make_shared<WorkerPool>();
  EngineOptions shared_options;
  shared_options.num_threads = 4;
  shared_options.worker_pool = pool;
  AnalysisSession shared_session(shared_options);

  // Private pools: one session (and thus one resolved pool) per relation.
  EngineOptions private_options;
  private_options.num_threads = 4;
  private_options.worker_pool = std::make_shared<WorkerPool>();
  AnalysisSession private_session1(private_options);
  private_options.worker_pool = std::make_shared<WorkerPool>();
  AnalysisSession private_session2(private_options);

  std::vector<AttrSet> sets;
  for (uint32_t m = 0; m < 32; ++m) sets.push_back(AttrSet::FromMask(m));
  for (const Relation* r : {&r1, &r2}) {
    AnalysisSession& priv = r == &r1 ? private_session1 : private_session2;
    std::vector<double> via_shared =
        shared_session.EngineFor(*r).BatchEntropy(sets);
    std::vector<double> via_private = priv.EngineFor(*r).BatchEntropy(sets);
    for (size_t i = 0; i < sets.size(); ++i) {
      EXPECT_NEAR(via_shared[i], EntropyOf(*r, sets[i]), 1e-9);
      EXPECT_NEAR(via_shared[i], via_private[i], 1e-9);
    }
  }
  // The shared pool actually spawned workers (4 workers = caller + 3) and
  // served both engines; neither engine grew a roster of its own.
  EXPECT_GT(pool->NumThreads(), 0u);
  EXPECT_LE(pool->NumThreads(), 3u);

  // End to end: a miner run through a shared-pool session renders byte-
  // identically to one through a private-pool session.
  MinerReport a = MineJoinTree(&shared_session, r1).value();
  EngineOptions fresh_options;
  fresh_options.num_threads = 4;
  fresh_options.worker_pool = std::make_shared<WorkerPool>();
  AnalysisSession fresh_private(fresh_options);
  MinerReport b = MineJoinTree(&fresh_private, r1).value();
  EXPECT_EQ(a.ToString(r1.schema()), b.ToString(r1.schema()));
}

TEST(WorkerPool, ProcessSharedDefaultIsReused) {
  // Engines built without an explicit pool all resolve to the process-wide
  // default; sessions expose the resolved pool.
  AnalysisSession s1;
  AnalysisSession s2;
  EXPECT_EQ(&s1.worker_pool(), &s2.worker_pool());
  EXPECT_EQ(&s1.worker_pool(), WorkerPool::Shared().get());
}

TEST(EntropyCalculator, SessionBackedSharesCache) {
  Rng rng(908);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 80);
  AnalysisSession session;
  EntropyCalculator first(&session, &r);
  EntropyCalculator second(&session, &r);
  first.Entropy(AttrSet{0, 1, 2});
  uint64_t hits_before = session.TotalStats().hits;
  second.Entropy(AttrSet{0, 1, 2});  // same engine: a hit, not a recompute
  EXPECT_EQ(session.TotalStats().hits, hits_before + 1);
  EXPECT_EQ(first.CacheSize(), second.CacheSize());
}

}  // namespace
}  // namespace ajd
