#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "relation/attr_set.h"

namespace ajd {
namespace {

TEST(AttrSet, EmptyByDefault) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
}

TEST(AttrSet, InitializerListAndContains) {
  AttrSet s{0, 5, 63};
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_FALSE(s.Contains(1));
}

TEST(AttrSet, AddRemove) {
  AttrSet s;
  s.Add(7);
  EXPECT_TRUE(s.Contains(7));
  s.Remove(7);
  EXPECT_FALSE(s.Contains(7));
  s.Remove(7);  // removing an absent element is a no-op
  EXPECT_TRUE(s.Empty());
}

TEST(AttrSet, RangeCoversPrefix) {
  AttrSet s = AttrSet::Range(5);
  EXPECT_EQ(s.Count(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_TRUE(s.Contains(i));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_EQ(AttrSet::Range(0).Count(), 0u);
  EXPECT_EQ(AttrSet::Range(64).Count(), 64u);
}

TEST(AttrSet, SingletonAndFirst) {
  AttrSet s = AttrSet::Singleton(12);
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_EQ(s.First(), 12u);
}

TEST(AttrSet, SetAlgebra) {
  AttrSet a{0, 1, 2};
  AttrSet b{2, 3};
  EXPECT_EQ(a.Union(b), (AttrSet{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), (AttrSet{2}));
  EXPECT_EQ(a.Minus(b), (AttrSet{0, 1}));
  EXPECT_TRUE((AttrSet{0, 1}).IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE((AttrSet{0}).DisjointFrom(AttrSet{1}));
  EXPECT_FALSE(a.DisjointFrom(b));
}

TEST(AttrSet, ToIndicesAscending) {
  AttrSet s{9, 1, 40};
  EXPECT_EQ(s.ToIndices(), (std::vector<uint32_t>{1, 9, 40}));
}

TEST(AttrSet, ForEachVisitsAscending) {
  AttrSet s{3, 0, 17};
  std::vector<uint32_t> seen;
  s.ForEach([&](uint32_t p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 3, 17}));
}

TEST(AttrSet, ToStringRendering) {
  EXPECT_EQ((AttrSet{0, 2}).ToString(), "{0,2}");
  EXPECT_EQ(AttrSet().ToString(), "{}");
}

TEST(AttrSet, OrderingByMask) {
  EXPECT_LT(AttrSet{0}, AttrSet{1});
  EXPECT_LT(AttrSet(), AttrSet{0});
}

TEST(AttrSet, HashDistinguishesSets) {
  AttrSetHash h;
  EXPECT_NE(h(AttrSet{0}), h(AttrSet{1}));
  EXPECT_EQ(h(AttrSet{0, 5}), h(AttrSet{5, 0}));
}

TEST(AttrSet, FromMaskRoundTrip) {
  AttrSet s = AttrSet::FromMask(0b1011);
  EXPECT_EQ(s, (AttrSet{0, 1, 3}));
  EXPECT_EQ(s.mask(), 0b1011u);
}

TEST(ForEachSubsetOfSize, EnumeratesAllCombinations) {
  AttrSet universe{1, 3, 5, 7};
  std::set<uint64_t> seen;
  ForEachSubsetOfSize(universe, 2, [&](AttrSet s) {
    EXPECT_EQ(s.Count(), 2u);
    EXPECT_TRUE(s.IsSubsetOf(universe));
    seen.insert(s.mask());
  });
  EXPECT_EQ(seen.size(), 6u);  // C(4,2)
}

TEST(ForEachSubsetOfSize, SizeZeroYieldsEmptySetOnce) {
  int count = 0;
  ForEachSubsetOfSize(AttrSet{2, 4}, 0, [&](AttrSet s) {
    EXPECT_TRUE(s.Empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ForEachSubsetOfSize, OversizeYieldsNothing) {
  int count = 0;
  ForEachSubsetOfSize(AttrSet{1}, 2, [&](AttrSet) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ForEachSubsetOfSize, FullSizeYieldsUniverse) {
  AttrSet universe{0, 9, 33};
  int count = 0;
  ForEachSubsetOfSize(universe, 3, [&](AttrSet s) {
    EXPECT_EQ(s, universe);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace ajd
