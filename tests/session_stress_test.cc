// Randomized stress/property suite for the sharded AnalysisSession: N
// relations of random schemas and skews churned through one session —
// created, queried, released, and recreated at REUSED addresses (the
// uid-identity path) — asserting after every operation that
//   (a) every entropy matches the legacy EntropyOf reference to 1e-9, and
//   (b) the shared arbiter's accounted bytes never exceed the budget.
// Plus the cross-engine concurrency coverage: multi-threaded BatchEntropy
// from two engines on one arbiter must be byte-identical to the serial
// run when each engine computes serially, and correct to 1e-9 under full
// fan-out with eviction pressure. The TSan CI leg runs this file.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/analysis_session.h"
#include "engine/cache_arbiter.h"
#include "engine/entropy_engine.h"
#include "engine/worker_pool.h"
#include "info/entropy.h"
#include "random/rng.h"
#include "relation/attr_set.h"
#include "relation/relation.h"
#include "test_util.h"

namespace ajd {
namespace {

// A random relation with random shape; skewed draws concentrate mass on
// low codes so partitions (and the engine's sketch ordering) see genuinely
// uneven data, and rows are kept as a multiset.
Relation RandomStressRelation(Rng* rng) {
  const uint32_t num_attrs = 2 + static_cast<uint32_t>(rng->UniformU64(4));
  const uint32_t domain = 2 + static_cast<uint32_t>(rng->UniformU64(5));
  const uint32_t rows = 20 + static_cast<uint32_t>(rng->UniformU64(180));
  const bool skewed = rng->Bernoulli(0.5);
  std::vector<uint64_t> dims(num_attrs, domain);
  Schema schema = Schema::MakeSynthetic(dims).value();
  RelationBuilder b(schema);
  std::vector<uint32_t> row(num_attrs);
  for (uint32_t i = 0; i < rows; ++i) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      if (skewed) {
        const double u = rng->NextDouble();
        uint32_t c = static_cast<uint32_t>(u * u * domain);
        row[a] = c >= domain ? domain - 1 : c;
      } else {
        row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
      }
    }
    b.AddRow(row);
  }
  return std::move(b).Build(/*dedupe=*/false);
}

AttrSet RandomNonEmptySubset(Rng* rng, uint32_t num_attrs) {
  const uint64_t limit = uint64_t{1} << num_attrs;
  uint64_t mask = 1 + rng->UniformU64(limit - 1);
  return AttrSet::FromMask(mask);
}

// One churn pass: `slots` relations live in std::optional storage, so a
// recreate lands at the SAME address as the released relation — exactly
// the address-reuse scenario the uid identity check exists for (a fresh
// engine after Release, never a stale one).
void ChurnSession(AnalysisSession* session, uint64_t seed, size_t budget) {
  Rng rng(seed);
  constexpr size_t kSlots = 6;
  constexpr int kOps = 150;
  std::vector<std::optional<Relation>> slots(kSlots);

  auto check_budget = [&] {
    if (session->cache_arbiter() != nullptr) {
      EXPECT_LE(session->CacheBytes(), budget);
      EXPECT_LE(session->cache_arbiter()->AccountedBytes(),
                session->cache_arbiter()->budget_bytes());
    }
  };
  auto query_and_check = [&](const Relation& r) {
    AttrSet attrs = RandomNonEmptySubset(&rng, r.NumAttrs());
    EXPECT_NEAR(session->EngineFor(r).Entropy(attrs), EntropyOf(r, attrs),
                1e-9)
        << "attrs=" << attrs.ToString();
    check_budget();
  };

  for (int op = 0; op < kOps; ++op) {
    const size_t i = static_cast<size_t>(rng.UniformU64(kSlots));
    std::optional<Relation>& slot = slots[i];
    if (!slot.has_value()) {
      slot.emplace(RandomStressRelation(&rng));
      query_and_check(*slot);
      continue;
    }
    switch (rng.UniformU64(4)) {
      case 0:  // point query
        query_and_check(*slot);
        break;
      case 1: {  // batch query, checked term by term
        std::vector<AttrSet> sets;
        for (int k = 0; k < 8; ++k) {
          sets.push_back(RandomNonEmptySubset(&rng, slot->NumAttrs()));
        }
        std::vector<double> got =
            session->EngineFor(*slot).BatchEntropy(sets);
        for (size_t k = 0; k < sets.size(); ++k) {
          EXPECT_NEAR(got[k], EntropyOf(*slot, sets[k]), 1e-9);
        }
        check_budget();
        break;
      }
      case 2:  // release and destroy; the slot goes dormant
        EXPECT_TRUE(session->Release(*slot));
        slot.reset();
        check_budget();
        break;
      default:  // release + recreate AT THE SAME ADDRESS, then query
        EXPECT_TRUE(session->Release(*slot));
        slot.emplace(RandomStressRelation(&rng));
        query_and_check(*slot);
        break;
    }
  }
  // Drain every survivor: releases discharge exactly what is accounted, so
  // a sharded session ends at zero accounted bytes.
  for (auto& slot : slots) {
    if (slot.has_value()) {
      EXPECT_TRUE(session->Release(*slot));
      slot.reset();
    }
  }
  EXPECT_EQ(session->NumRelations(), 0u);
  if (session->cache_arbiter() != nullptr) {
    EXPECT_EQ(session->CacheBytes(), 0u);
  }
}

TEST(SessionStress, RandomChurnHoldsValueAndBudgetInvariants) {
  // Budgets spanning "evict almost everything" to "never evict", plus the
  // legacy unsharded configuration (budget 0 = no arbiter) as control.
  const size_t kBudgets[] = {2048, 64 << 10, size_t{1} << 30, 0};
  uint64_t seed = 940;
  for (size_t budget : kBudgets) {
    SessionOptions opts;
    opts.cache_budget_bytes = budget;
    AnalysisSession session(opts);
    ASSERT_EQ(session.cache_arbiter() != nullptr, budget != 0);
    ChurnSession(&session, ++seed, budget);
  }
}

TEST(SessionStress, ParallelEnginesChurnHoldsInvariants) {
  // Same churn, but every engine fans batches out on the shared pool (the
  // WorkerPool serializes batches; the arbiter sees concurrent charges
  // from the pool's workers).
  SessionOptions opts;
  opts.engine.num_threads = 4;
  opts.cache_budget_bytes = 32 << 10;
  AnalysisSession session(opts);
  ChurnSession(&session, 950, *opts.cache_budget_bytes);
}

TEST(SessionStress, ReleaseOfUnknownRelationIsFalseAndDoubleReleaseIsNoOp) {
  Rng rng(951);
  Relation served = testing_util::RandomTestRelation(&rng, 4, 3, 80);
  Relation never_served = testing_util::RandomTestRelation(&rng, 4, 3, 80);
  AnalysisSession session;
  session.EngineFor(served).Entropy(AttrSet{0, 1});
  const size_t accounted = session.CacheBytes();

  // Unknown relation: false, and nothing about the session changes.
  EXPECT_FALSE(session.Release(never_served));
  EXPECT_EQ(session.NumRelations(), 1u);
  EXPECT_EQ(session.CacheBytes(), accounted);

  // First release drops the engine and discharges it; the second is a
  // no-op returning false, not UB — the session stays fully usable.
  EXPECT_TRUE(session.Release(served));
  EXPECT_FALSE(session.Release(served));
  EXPECT_EQ(session.NumRelations(), 0u);
  EXPECT_EQ(session.CacheBytes(), 0u);
  EXPECT_NEAR(session.EngineFor(served).Entropy(AttrSet{0, 1}),
              EntropyOf(served, AttrSet{0, 1}), 1e-9);
}

TEST(SessionStress, UnreleasedAddressReuseRebuildsTransparently) {
  // The old fingerprint guard ABORTED here; the uid check now rebuilds the
  // engine transparently, because "relation changed" is a legitimate state
  // (epochs) and only identity — a DIFFERENT relation at the same address
  // — requires action. The new engine must serve the new relation's
  // values, not the dead one's.
  Rng rng(952);
  std::optional<Relation> slot;
  slot.emplace(testing_util::RandomTestRelation(&rng, 3, 3, 40));
  AnalysisSession session;
  const double before = session.EngineFor(*slot).Entropy(AttrSet{0, 1});
  const uint64_t old_uid = slot->uid();
  slot.reset();
  slot.emplace(testing_util::RandomTestRelation(&rng, 3, 3, 60));
  ASSERT_NE(slot->uid(), old_uid);
  EntropyEngine& rebuilt = session.EngineFor(*slot);
  EXPECT_EQ(rebuilt.relation_uid(), slot->uid());
  EXPECT_NEAR(rebuilt.Entropy(AttrSet{0, 1}),
              EntropyOf(*slot, AttrSet{0, 1}), 1e-9);
  EXPECT_EQ(session.NumRelations(), 1u);
  (void)before;
}

TEST(SessionStress, AppendUnderSessionCatchesUpInsteadOfAborting) {
  // Growth of the SAME relation (same uid, newer epoch) must neither abort
  // nor rebuild: the engine catches up and keeps serving exact values.
  Rng rng(953);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 50);
  AnalysisSession session;
  EntropyEngine& engine = session.EngineFor(r);
  engine.Entropy(AttrSet{0, 1});
  std::vector<std::vector<uint32_t>> batch;
  for (int i = 0; i < 30; ++i) {
    batch.push_back({static_cast<uint32_t>(rng.UniformU64(4)),
                     static_cast<uint32_t>(rng.UniformU64(4)),
                     static_cast<uint32_t>(rng.UniformU64(4))});
  }
  ASSERT_TRUE(r.AppendBatch(batch).ok());
  EntropyEngine& same = session.EngineFor(r);
  EXPECT_EQ(&same, &engine);  // no rebuild: identity matched
  for (uint64_t mask = 1; mask < 8; ++mask) {
    const AttrSet s = AttrSet::FromMask(mask);
    EXPECT_NEAR(same.Entropy(s), EntropyOf(r, s), 1e-9) << mask;
  }
  EXPECT_EQ(same.Stats().epoch_catchups, 1u);
}

TEST(WorkerPool, BusyPoolRunsSubmitterInlineInsteadOfWaiting) {
  // One submitter parks inside its batch while holding the pool; a second
  // submitter must complete WITHOUT waiting for it (inline on its own
  // thread). Under the old head-of-line blocking this test deadlocks: the
  // second Run would sit on the submit lock while the first batch waits
  // for it to finish.
  WorkerPool pool;
  std::atomic<bool> first_started{false};
  std::atomic<bool> second_done{false};
  std::thread first([&] {
    std::function<void(size_t)> block = [&](size_t) {
      first_started.store(true);
      while (!second_done.load()) std::this_thread::yield();
    };
    pool.Run(1, 2, block);
  });
  while (!first_started.load()) std::this_thread::yield();

  std::atomic<int> processed{0};
  std::function<void(size_t)> count = [&](size_t) { ++processed; };
  pool.Run(3, 2, count);  // pool busy -> inline, cannot block
  EXPECT_EQ(processed.load(), 3);
  second_done.store(true);
  first.join();
}

TEST(WorkerPool, ThrowingTaskIsContainedOnEveryPath) {
  // A task that throws must neither kill a pool thread (std::terminate)
  // nor strand the batch latch: the remaining indexes run, the batch
  // drains, and the first exception resurfaces on the submitter. All
  // three execution paths — pool-run, workers<=1 inline, and busy-pool
  // inline — must behave identically, and the pool must stay usable for
  // later batches.
  WorkerPool pool;
  auto run_and_expect_contained = [&](uint32_t workers) {
    std::atomic<int> processed{0};
    std::function<void(size_t)> task = [&](size_t i) {
      if (i == 2) throw std::runtime_error("task boom");
      ++processed;
    };
    try {
      pool.Run(6, workers, task);
      FAIL() << "expected the task's exception to resurface";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task boom");
    }
    EXPECT_EQ(processed.load(), 5);  // every non-throwing index still ran
  };
  run_and_expect_contained(/*workers=*/4);  // pool path
  run_and_expect_contained(/*workers=*/1);  // inline path

  // Busy-pool inline path: occupy the pool from another thread, then
  // submit a throwing batch that must run inline with the same semantics.
  std::atomic<bool> first_started{false};
  std::atomic<bool> release{false};
  std::thread occupier([&] {
    std::function<void(size_t)> block = [&](size_t) {
      first_started.store(true);
      while (!release.load()) std::this_thread::yield();
    };
    pool.Run(1, 2, block);
  });
  while (!first_started.load()) std::this_thread::yield();
  run_and_expect_contained(/*workers=*/4);  // busy -> inline fallback
  release.store(true);
  occupier.join();

  // The pool survived: a clean batch still completes on pool threads.
  std::atomic<int> clean{0};
  std::function<void(size_t)> count = [&](size_t) { ++clean; };
  pool.Run(8, 4, count);
  EXPECT_EQ(clean.load(), 8);
}

TEST(WorkerPool, NestedSubmissionRunsInlineAndCompletes) {
  // A pool task that itself submits a sub-batch (the sharded refine
  // kernels do exactly this when a batched query crosses the intra-op
  // threshold) must take the busy-inline path — the outer Run holds the
  // submit lock for its whole duration — and complete every sub-index on
  // the task's own thread. Under a waiting submit lock this test
  // deadlocks: the inner Run would park on a lock its own batch holds.
  WorkerPool pool;
  constexpr size_t kOuter = 4;
  constexpr size_t kInner = 5;
  std::atomic<int> inner_ran{0};
  std::function<void(size_t)> outer = [&](size_t) {
    std::function<void(size_t)> inner = [&](size_t) { ++inner_ran; };
    pool.Run(kInner, 4, inner);
  };
  pool.Run(kOuter, 3, outer);
  EXPECT_EQ(inner_ran.load(), static_cast<int>(kOuter * kInner));

  // Exceptions from a NESTED batch stay contained with the usual
  // semantics: every inner index still runs, the first inner exception
  // resurfaces on the outer task (its submitter), and — rethrown there —
  // is contained again by the OUTER batch, reaching the real submitter
  // exactly once. The pool survives for later batches.
  std::atomic<int> inner_ok{0};
  std::function<void(size_t)> outer_throwing = [&](size_t) {
    std::function<void(size_t)> inner = [&](size_t i) {
      if (i == 1) throw std::runtime_error("nested boom");
      ++inner_ok;
    };
    pool.Run(kInner, 4, inner);
  };
  try {
    pool.Run(kOuter, 3, outer_throwing);
    FAIL() << "expected the nested exception to resurface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "nested boom");
  }
  EXPECT_EQ(inner_ok.load(), static_cast<int>(kOuter * (kInner - 1)));

  std::atomic<int> clean{0};
  std::function<void(size_t)> count = [&](size_t) { ++clean; };
  pool.Run(8, 4, count);
  EXPECT_EQ(clean.load(), 8);
}

// --- Serve-while-ingest: readers pinned across appends -------------------

TEST(SessionStress, MultiReaderSingleAppenderSoakHoldsValueAndBudget) {
  // One appender thread grows a relation under the session while reader
  // threads pin and query it — no quiescence, catch-up running
  // cooperatively on whichever reader wins the try-lock, under enough
  // arbiter pressure that claims, evictions, and publishes interleave.
  // Every observed value must match the cold reference at the reader's
  // pinned row count, and the budget invariant must hold at the end. The
  // TSan CI leg runs this test.
  Rng rng(970);
  const uint32_t num_attrs = 4;
  const uint32_t domain = 3;
  const uint32_t kBatches = 5;
  auto draw_rows = [&rng, num_attrs, domain](uint32_t count) {
    std::vector<std::vector<uint32_t>> rows(
        count, std::vector<uint32_t>(num_attrs));
    for (auto& row : rows) {
      for (uint32_t a = 0; a < num_attrs; ++a) {
        row[a] = static_cast<uint32_t>(rng.UniformU64(domain));
      }
    }
    return rows;
  };
  auto rows = draw_rows(100);
  std::vector<std::vector<std::vector<uint32_t>>> batches;
  for (uint32_t k = 0; k < kBatches; ++k) batches.push_back(draw_rows(40));

  auto from_rows = [num_attrs](
                       const std::vector<std::vector<uint32_t>>& content) {
    std::vector<uint64_t> dims(num_attrs, 2);
    RelationBuilder b(Schema::MakeSynthetic(dims).value());
    for (const auto& row : content) b.AddRow(row);
    return std::move(b).Build(/*dedupe=*/false);
  };
  // Cold reference at every batch boundary (the only pinnable row counts).
  std::unordered_map<uint64_t, std::vector<double>> expected;
  {
    auto prefix = rows;
    auto record = [&] {
      Relation cold = from_rows(prefix);
      std::vector<double> vals(16, 0.0);
      for (uint64_t mask = 1; mask < 16; ++mask) {
        vals[mask] = EntropyOf(cold, AttrSet::FromMask(mask));
      }
      expected[prefix.size()] = std::move(vals);
    };
    record();
    for (const auto& batch : batches) {
      prefix.insert(prefix.end(), batch.begin(), batch.end());
      record();
    }
  }

  SessionOptions opts;
  opts.cache_budget_bytes = 24 << 10;  // small: evictions mid-soak
  AnalysisSession session(opts);
  Relation r = from_rows(rows);
  EntropyEngine& engine = session.EngineFor(r);
  engine.Entropy(AttrSet{0, 1});

  struct Obs {
    uint64_t rows;
    uint32_t mask;
    double h;
  };
  constexpr int kReaders = 4;
  std::vector<std::vector<Obs>> observed(kReaders);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&engine, &observed, &done, t] {
      Rng trng(9800 + static_cast<uint64_t>(t));
      auto& out = observed[static_cast<size_t>(t)];
      while (!done.load(std::memory_order_acquire)) {
        // No maintenance thread here: catch-up is purely cooperative, so
        // readers poll for new epochs themselves.
        if (trng.Bernoulli(0.5)) engine.CatchUp();
        const EpochPin pin = engine.Pin();
        for (int q = 0; q < 3; ++q) {
          const uint32_t mask =
              1 + static_cast<uint32_t>(trng.UniformU64(15));
          out.push_back({pin.rows, mask,
                         engine.EntropyAt(AttrSet::FromMask(mask), pin)});
        }
      }
    });
  }
  for (const auto& batch : batches) {
    ASSERT_TRUE(r.AppendBatch(batch).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(400));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  size_t checked = 0;
  for (const auto& per_thread : observed) {
    for (const Obs& o : per_thread) {
      auto it = expected.find(o.rows);
      ASSERT_NE(it, expected.end()) << "pin at non-boundary rows " << o.rows;
      EXPECT_NEAR(o.h, it->second[o.mask], 1e-9)
          << "rows " << o.rows << " mask " << o.mask;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  engine.CatchUp();
  const std::vector<double>& final_vals = expected.at(r.NumRows());
  for (uint64_t mask = 1; mask < 16; ++mask) {
    EXPECT_NEAR(engine.Entropy(AttrSet::FromMask(mask)), final_vals[mask],
                1e-9)
        << mask;
  }
  EXPECT_LE(session.CacheBytes(), *opts.cache_budget_bytes);
}

// --- Cross-engine concurrency on one arbiter ----------------------------

TEST(SessionConcurrency, TwoEngineConcurrentBatchesAreByteIdenticalToSerial) {
  Rng rng(960);
  Relation r1 = testing_util::RandomTestRelation(&rng, 6, 3, 200);
  Relation r2 = testing_util::RandomTestRelation(&rng, 6, 4, 160);
  std::vector<AttrSet> sets;
  for (uint32_t m = 1; m < 64; ++m) sets.push_back(AttrSet::FromMask(m));

  // Serial reference: one engine after the other, huge shared budget (no
  // evictions), each engine computing on the calling thread.
  SessionOptions opts;
  opts.cache_budget_bytes = size_t{1} << 30;
  AnalysisSession serial(opts);
  const std::vector<double> want1 = serial.EngineFor(r1).BatchEntropy(sets);
  const std::vector<double> want2 = serial.EngineFor(r2).BatchEntropy(sets);

  // Concurrent: the two engines batch simultaneously from two threads.
  // Each engine still computes serially (num_threads = 1), so its own
  // refinement order is fixed; the only concurrency is the shared arbiter
  // taking charges and touches from both engines at once. Values must be
  // byte-identical to the serial run.
  for (int round = 0; round < 5; ++round) {
    AnalysisSession concurrent(opts);
    EntropyEngine& e1 = concurrent.EngineFor(r1);
    EntropyEngine& e2 = concurrent.EngineFor(r2);
    std::vector<double> got1, got2;
    std::thread t1([&] { got1 = e1.BatchEntropy(sets); });
    std::thread t2([&] { got2 = e2.BatchEntropy(sets); });
    t1.join();
    t2.join();
    ASSERT_EQ(got1.size(), want1.size());
    ASSERT_EQ(got2.size(), want2.size());
    for (size_t i = 0; i < sets.size(); ++i) {
      EXPECT_EQ(got1[i], want1[i]) << "round " << round << " set "
                                   << sets[i].ToString();
      EXPECT_EQ(got2[i], want2[i]) << "round " << round << " set "
                                   << sets[i].ToString();
    }
  }
}

TEST(SessionConcurrency, FanOutUnderEvictionPressureStaysCorrect) {
  Rng rng(961);
  Relation r1 = testing_util::RandomTestRelation(&rng, 6, 3, 250);
  Relation r2 = testing_util::RandomTestRelation(&rng, 6, 4, 200);
  std::vector<AttrSet> sets;
  for (uint32_t m = 1; m < 64; ++m) sets.push_back(AttrSet::FromMask(m));

  // Full fan-out (engines use the shared pool) under a budget small enough
  // that the arbiter evicts across engines mid-batch. Values are checked
  // against the legacy reference; the budget invariant must hold at the
  // end, and under TSan this is the hottest charge/evict/drop interleaving
  // the engine has.
  SessionOptions opts;
  opts.engine.num_threads = 4;
  opts.cache_budget_bytes = 8 << 10;
  opts.cache_floor_bytes = 1 << 10;
  AnalysisSession session(opts);
  EntropyEngine& e1 = session.EngineFor(r1);
  EntropyEngine& e2 = session.EngineFor(r2);
  std::vector<double> got1, got2;
  std::thread t1([&] { got1 = e1.BatchEntropy(sets); });
  std::thread t2([&] { got2 = e2.BatchEntropy(sets); });
  t1.join();
  t2.join();
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_NEAR(got1[i], EntropyOf(r1, sets[i]), 1e-9);
    EXPECT_NEAR(got2[i], EntropyOf(r2, sets[i]), 1e-9);
  }
  EXPECT_LE(session.CacheBytes(), opts.cache_budget_bytes);
  EXPECT_GT(session.cache_arbiter()->Stats().evictions, 0u);
}

}  // namespace
}  // namespace ajd
