#include <gtest/gtest.h>

#include <cmath>

#include "core/loss.h"
#include "core/worstcase.h"
#include "random/rng.h"
#include "relation/acyclic_join.h"
#include "relation/ops.h"
#include "test_util.h"

namespace ajd {
namespace {

TEST(ComputeLoss, ZeroForLosslessInstance) {
  Rng rng(91);
  Instance inst = MakeLosslessMvdInstance(8, 8, 4, 3, 3, &rng).value();
  LossReport report = ComputeLoss(inst.relation, inst.tree).value();
  EXPECT_EQ(report.rho, 0.0);
  EXPECT_EQ(report.log1p_rho, 0.0);
  EXPECT_EQ(report.join_size_exact.value(), inst.relation.NumRows());
}

TEST(ComputeLoss, DiagonalFamilyIsNMinusOne) {
  Instance inst = MakeDiagonalInstance(12).value();
  LossReport report = ComputeLoss(inst.relation, inst.tree).value();
  EXPECT_NEAR(report.rho, 11.0, 1e-12);
  EXPECT_NEAR(report.log1p_rho, std::log(12.0), 1e-12);
}

TEST(ComputeLoss, RejectsEmptyRelation) {
  Schema s = Schema::Make({{"A", 2}, {"B", 2}}).value();
  Relation r = Relation::FromRows(s, {}).value();
  JoinTree t = JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 1}}).value();
  EXPECT_EQ(ComputeLoss(r, t).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ComputeLoss, RejectsForeignAttributes) {
  Schema s = Schema::Make({{"A", 2}}).value();
  Relation r = Relation::FromRows(s, {{0}}).value();
  JoinTree t = JoinTree::Make({AttrSet{0}, AttrSet{5}}, {{0, 1}}).value();
  EXPECT_FALSE(ComputeLoss(r, t).ok());
}

TEST(ComputeLoss, RhoNonNegativeOnRandomInputs) {
  Rng rng(92);
  for (int trial = 0; trial < 40; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 4, 3, 40);
    JoinTree t = testing_util::RandomJoinTree(&rng, 4);
    LossReport report = ComputeLoss(r, t).value();
    EXPECT_GE(report.rho, 0.0);
  }
}

TEST(ComputeMvdLoss, MatchesMaterializedJoinOfProjections) {
  Rng rng(93);
  for (int trial = 0; trial < 30; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 35);
    Mvd mvd = MakeMvd(AttrSet{2}, AttrSet{0}, AttrSet{1});
    LossReport report = ComputeMvdLoss(r, mvd).value();
    Relation a = Project(r, mvd.side_a);
    Relation b = Project(r, mvd.side_b);
    Relation joined = NaturalJoin(a, b).value();
    double expected_rho =
        (static_cast<double>(joined.NumRows()) -
         static_cast<double>(r.NumRows())) /
        static_cast<double>(r.NumRows());
    EXPECT_NEAR(report.rho, expected_rho, 1e-12);
    EXPECT_EQ(report.join_size_exact.value(), joined.NumRows());
  }
}

TEST(ComputeMvdLoss, EmptyLhsIsCrossProduct) {
  Instance inst = MakeDiagonalInstance(9).value();
  Mvd mvd = MakeMvd(AttrSet(), AttrSet{0}, AttrSet{1});
  LossReport report = ComputeMvdLoss(inst.relation, mvd).value();
  EXPECT_EQ(report.join_size_exact.value(), 81u);
  EXPECT_NEAR(report.rho, 8.0, 1e-12);
}

TEST(ComputeMvdLoss, AgreesWithComputeLossOnTwoBagTree) {
  // For a 2-bag tree, the schema loss IS the MVD loss of its single
  // support MVD.
  Rng rng(94);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 30);
    JoinTree t =
        JoinTree::Make({AttrSet{0, 1}, AttrSet{1, 2}}, {{0, 1}}).value();
    LossReport schema_loss = ComputeLoss(r, t).value();
    LossReport mvd_loss =
        ComputeMvdLoss(r, t.SupportMvds()[0]).value();
    EXPECT_NEAR(schema_loss.rho, mvd_loss.rho, 1e-12);
  }
}

TEST(ComputeMvdLoss, LosslessWhenConditionallyIndependent) {
  Rng rng(95);
  Instance inst = MakeLosslessMvdInstance(7, 7, 5, 2, 3, &rng).value();
  Mvd mvd = MakeMvd(AttrSet{2}, AttrSet{0}, AttrSet{1});
  LossReport report = ComputeMvdLoss(inst.relation, mvd).value();
  EXPECT_EQ(report.rho, 0.0);
}

TEST(ComputeMvdLoss, OverlappingSidesJoinOnAllSharedAttrs) {
  // Sides {0,1,2} and {1,2}: shared attrs {1,2} even though lhs is {1}.
  Rng rng(96);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 25);
  Mvd mvd;
  mvd.lhs = AttrSet{1};
  mvd.side_a = AttrSet{0, 1, 2};
  mvd.side_b = AttrSet{1, 2};
  LossReport report = ComputeMvdLoss(r, mvd).value();
  // R[ABC] join R[BC] on {B,C} has exactly |R| tuples (R is a set).
  EXPECT_EQ(report.join_size_exact.value(), r.NumRows());
  EXPECT_EQ(report.rho, 0.0);
}

}  // namespace
}  // namespace ajd
