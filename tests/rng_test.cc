#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "random/rng.h"

namespace ajd {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64CoversSmallRangeUniformly) {
  Rng rng(6);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformU64(bound)];
  // Chi-square-ish check: each bucket within 5% of expectation.
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / 10.0, n / 10.0 * 0.07) << v;
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleMixes) {
  Rng rng(11);
  std::vector<int> first_positions(5, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<int> v = {0, 1, 2, 3, 4};
    rng.Shuffle(&v);
    ++first_positions[v[0]];
  }
  for (int c : first_positions) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(12);
  Rng child = a.Fork();
  // The child stream must not coincide with the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  // C++17 spelling of the UniformRandomBitGenerator requirements (the
  // std::uniform_random_bit_generator concept is C++20).
  static_assert(std::is_unsigned<Rng::result_type>::value,
                "result_type must be unsigned");
  static_assert(
      std::is_same<decltype(std::declval<Rng&>()()), Rng::result_type>::value,
      "operator() must return result_type");
  static_assert(Rng::min() < Rng::max(), "min() must be less than max()");
  Rng rng(13);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~uint64_t{0});
  (void)rng();
}

}  // namespace
}  // namespace ajd
