// Fault-injection soak: every registered failpoint (util/failpoint.h) is
// armed — alone and in combination, under one-shot / every-Nth /
// probability-with-seed policies — while a session-stress workload churns
// appends, CSV ingestion, engine queries, epoch catch-ups, and streaming
// monitoring. After every injected fault the suite asserts the robustness
// contract the headers promise:
//   (a) the process survives — faults surface as Status or as a contained
//       std::exception on the calling thread, never as an abort;
//   (b) the cache arbiter's accounted bytes never exceed its budget (no
//       leaked charges, no double discharges — even when catch-up drops
//       entries or aborts before publish);
//   (c) every subsequently served entropy equals the fault-free cold
//       reference (info/entropy.h EntropyOf) to 1e-9.
// Plus focused per-layer regressions: all-or-nothing append rollback
// (codes, strings/dictionaries, CSV batches with resume), engine query
// faults, degraded and aborted catch-ups, and streaming quarantine under
// injected (not just deterministic) faults.
//
// The whole file is compiled in every build; without AJD_ENABLE_FAILPOINTS
// the injection sites are compiled out, so every test that needs a fault
// to actually fire GTEST_SKIPs. The registry's policy arithmetic is
// build-independent and tested unconditionally.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <memory>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/streaming.h"
#include "engine/analysis_session.h"
#include "engine/cache_arbiter.h"
#include "engine/entropy_engine.h"
#include "info/entropy.h"
#include "io/csv.h"
#include "persist/persistent_store.h"
#include "random/rng.h"
#include "relation/attr_set.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "test_util.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace ajd {
namespace {

FailpointRegistry& Reg() { return FailpointRegistry::Instance(); }

/// Leaves no failpoint armed behind a test, pass or fail.
struct DisarmOnExit {
  ~DisarmOnExit() { Reg().DisarmAll(); }
};

std::vector<std::vector<uint32_t>> RandomRows(Rng* rng, uint32_t num_attrs,
                                              uint32_t domain,
                                              uint32_t count) {
  std::vector<std::vector<uint32_t>> rows(count,
                                          std::vector<uint32_t>(num_attrs));
  for (auto& row : rows) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
  }
  return rows;
}

std::vector<std::vector<std::string>> RandomStringRows(Rng* rng,
                                                       uint32_t num_attrs,
                                                       uint32_t domain,
                                                       uint32_t count) {
  std::vector<std::vector<std::string>> rows(
      count, std::vector<std::string>(num_attrs));
  for (auto& row : rows) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row[a] = "v" + std::to_string(rng->UniformU64(domain));
    }
  }
  return rows;
}

AttrSet RandomNonEmptySubset(Rng* rng, uint32_t num_attrs) {
  const uint64_t limit = uint64_t{1} << num_attrs;
  return AttrSet::FromMask(1 + rng->UniformU64(limit - 1));
}

Relation EmptyStringRelation(const std::vector<std::string>& names) {
  Result<Schema> schema = Schema::MakeUniform(names, 1);
  AJD_CHECK(schema.ok());
  RelationBuilder b(std::move(schema).value());
  return std::move(b).Build(/*dedupe=*/false);
}

// ---------------------------------------------------------------------------
// Registry policy arithmetic — build-independent (ShouldFail is a plain
// method; the macros are only the production call sites).
// ---------------------------------------------------------------------------

TEST(FailpointRegistryTest, EveryNthFiresOnSchedule) {
  DisarmOnExit guard;
  Reg().Arm("test/every_nth", FailpointConfig::EveryNth(3, 1));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(Reg().ShouldFail("test/every_nth"));
  }
  // Evaluations 1..9 with one skipped: fires on evals 4 and 7.
  const std::vector<bool> want = {false, false, false, true, false,
                                  false, true,  false, false};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(Reg().Evaluations("test/every_nth"), 9u);
  EXPECT_EQ(Reg().Triggers("test/every_nth"), 2u);
}

TEST(FailpointRegistryTest, OneShotFiresExactlyOnce) {
  DisarmOnExit guard;
  Reg().Arm("test/one_shot", FailpointConfig::OneShot(2));
  int fires = 0;
  for (int i = 0; i < 8; ++i) fires += Reg().ShouldFail("test/one_shot");
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(Reg().Triggers("test/one_shot"), 1u);
}

TEST(FailpointRegistryTest, ProbabilityIsSeededAndReproducible) {
  DisarmOnExit guard;
  auto draw = [&] {
    Reg().Arm("test/prob", FailpointConfig::Probability(0.5, 1234));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(Reg().ShouldFail("test/prob"));
    return fired;
  };
  const std::vector<bool> first = draw();
  EXPECT_EQ(first, draw());  // re-arming with the same seed replays exactly
  const uint64_t triggers = Reg().Triggers("test/prob");
  EXPECT_GT(triggers, 16u);  // p=0.5 over 64 draws; loose deterministic band
  EXPECT_LT(triggers, 48u);
}

TEST(FailpointRegistryTest, UnarmedAndDisarmedPointsNeverFire) {
  DisarmOnExit guard;
  EXPECT_FALSE(Reg().ShouldFail("test/never_armed"));
  Reg().Arm("test/disarm", FailpointConfig::EveryNth(1));
  EXPECT_TRUE(Reg().ShouldFail("test/disarm"));
  Reg().Disarm("test/disarm");
  EXPECT_FALSE(Reg().ShouldFail("test/disarm"));
  // Counters survive disarm for post-hoc assertions.
  EXPECT_EQ(Reg().Triggers("test/disarm"), 1u);
}

TEST(FailpointRegistryTest, CatalogListsEveryCompiledSite) {
  const std::vector<std::string>& catalog = FailpointRegistry::Catalog();
  const std::vector<std::string> want = {
      failpoints::kRelationAppendReserve, failpoints::kRelationAppendStage,
      failpoints::kRelationIntern,        failpoints::kCsvBatch,
      failpoints::kEngineComputePartition, failpoints::kEngineBatchTask,
      failpoints::kEngineCatchupExtend,   failpoints::kEngineCatchupPublish,
      failpoints::kStreamingIngestBatch,  failpoints::kPersistManifestAppend,
      failpoints::kPersistBlobWrite,      failpoints::kPersistBlobRead,
      failpoints::kPersistCompactRename};
  EXPECT_EQ(catalog, want);
}

// ---------------------------------------------------------------------------
// Injection tests — need the sites compiled in.
// ---------------------------------------------------------------------------

#ifdef AJD_ENABLE_FAILPOINTS
constexpr bool kFailpointsCompiledIn = true;
#else
constexpr bool kFailpointsCompiledIn = false;
#endif

#define AJD_REQUIRE_FAILPOINT_BUILD()                                     \
  do {                                                                    \
    if (!kFailpointsCompiledIn) {                                         \
      GTEST_SKIP() << "built without -DAJD_ENABLE_FAILPOINTS=ON; "        \
                      "injection sites are compiled out";                 \
    }                                                                     \
  } while (0)

TEST(FaultInjection, AppendBatchRollsBackBitIdentical) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  Rng rng(11);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 4, 40);
  const std::vector<uint32_t> data_before = r.data();
  const uint64_t rows_before = r.NumRows();
  const uint64_t epoch_before = r.epoch();
  const std::vector<std::vector<uint32_t>> batch = RandomRows(&rng, 3, 4, 12);

  // Fail at the reserve and then mid-staging (row 6 of 12): both must
  // leave rows, row count, and epoch untouched.
  for (const char* point : {failpoints::kRelationAppendReserve,
                            failpoints::kRelationAppendStage}) {
    Reg().Arm(point, FailpointConfig::OneShot(
                         point == failpoints::kRelationAppendStage ? 6 : 0));
    Status s = r.AppendBatch(batch);
    EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded) << point;
    EXPECT_GE(Reg().Triggers(point), 1u) << point;
    EXPECT_EQ(r.NumRows(), rows_before) << point;
    EXPECT_EQ(r.epoch(), epoch_before) << point;
    EXPECT_EQ(r.data(), data_before) << point;
    Reg().Disarm(point);
  }

  // With the faults gone the very same batch lands (dedupe still works
  // after the rollback dropped the lazily built membership index).
  ASSERT_TRUE(r.AppendBatch(batch, /*dedupe=*/true).ok());
  EXPECT_GT(r.NumRows(), rows_before);
  EXPECT_EQ(r.epoch(), epoch_before + 1);
}

TEST(FaultInjection, AppendStringBatchRollsBackDictionaries) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  Rng rng(12);
  Relation r = EmptyStringRelation({"a", "b", "c"});
  ASSERT_TRUE(r.AppendStringBatch(RandomStringRows(&rng, 3, 4, 20)).ok());
  const std::vector<uint32_t> data_before = r.data();
  const uint64_t rows_before = r.NumRows();
  std::vector<uint32_t> dict_sizes_before;
  for (uint32_t a = 0; a < 3; ++a) {
    ASSERT_NE(r.dict(a), nullptr);
    dict_sizes_before.push_back(r.dict(a)->size());
  }

  // A batch full of FRESH values, failing mid-intern: the entries staged
  // before the fault must be truncated back out of every dictionary.
  std::vector<std::vector<std::string>> fresh(
      8, std::vector<std::string>(3));
  for (size_t i = 0; i < fresh.size(); ++i) {
    for (uint32_t a = 0; a < 3; ++a) {
      fresh[i][a] = "fresh_" + std::to_string(i) + "_" + std::to_string(a);
    }
  }
  Reg().Arm(failpoints::kRelationIntern, FailpointConfig::OneShot(10));
  Status s = r.AppendStringBatch(fresh);
  EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
  EXPECT_GE(Reg().Triggers(failpoints::kRelationIntern), 1u);
  EXPECT_EQ(r.NumRows(), rows_before);
  EXPECT_EQ(r.data(), data_before);
  for (uint32_t a = 0; a < 3; ++a) {
    EXPECT_EQ(r.dict(a)->size(), dict_sizes_before[a]) << "attr " << a;
    EXPECT_FALSE(r.dict(a)->Lookup("fresh_0_" + std::to_string(a)));
  }

  // Retry clean: the fresh values intern again from the rolled-back state
  // and get the same dense codes a never-failed run would have assigned.
  Reg().DisarmAll();
  ASSERT_TRUE(r.AppendStringBatch(fresh).ok());
  EXPECT_EQ(r.NumRows(), rows_before + fresh.size());
  EXPECT_EQ(r.dict(0)->Lookup("fresh_0_0"),
            std::optional<uint32_t>(dict_sizes_before[0]));
}

TEST(FaultInjection, CsvBatchFaultReportsCommitsAndResumes) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  const std::string text =
      "a,b\n"
      "x1,y1\nx2,y2\n"
      "x3,y3\nx4,y4\n"
      "x5,y5\nx6,y6\n";
  CsvOptions opts;
  opts.dedupe = false;

  // Fault-free reference ingest.
  Relation clean = EmptyStringRelation({"a", "b"});
  {
    std::istringstream in(text);
    ASSERT_TRUE(AppendCsvBatches(in, &clean, opts, 2).ok());
    ASSERT_EQ(clean.NumRows(), 6u);
  }

  // Fail on the second batch: exactly one batch committed, and the
  // summary's resume offset restarts the ingest right where it stopped.
  Relation r = EmptyStringRelation({"a", "b"});
  Reg().Arm(failpoints::kCsvBatch, FailpointConfig::OneShot(1));
  CsvIngestSummary summary;
  std::istringstream in(text);
  Status s = AppendCsvBatches(in, &r, opts, 2, &summary);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(summary.batches_committed, 1u);
  EXPECT_EQ(summary.rows_read, 2u);
  EXPECT_EQ(summary.rows_appended, 2u);
  EXPECT_EQ(r.NumRows(), 2u);
  ASSERT_GT(summary.resume_offset, 0);

  Reg().DisarmAll();
  CsvOptions resume = opts;
  resume.has_header = false;
  std::istringstream rest(text.substr(
      static_cast<size_t>(summary.resume_offset)));
  CsvIngestSummary resumed;
  ASSERT_TRUE(AppendCsvBatches(rest, &r, resume, 2, &resumed).ok());
  EXPECT_EQ(resumed.rows_appended, 4u);
  EXPECT_EQ(r.NumRows(), clean.NumRows());
  EXPECT_EQ(r.data(), clean.data());  // identical to the fault-free ingest
}

TEST(FaultInjection, EngineQueryFaultsAreContainedAndRecoverable) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  Rng rng(13);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 4, 120);
  EngineOptions opts;
  opts.num_threads = 4;
  EntropyEngine engine(&r, opts);

  // A compute-path allocation failure propagates to the calling thread as
  // bad_alloc — never an abort — and caches nothing broken.
  Reg().Arm(failpoints::kEngineComputePartition, FailpointConfig::OneShot());
  EXPECT_THROW(engine.Entropy(AttrSet::FromMask(0xF)), std::bad_alloc);

  // A task dying inside a pooled batch is contained by the WorkerPool: the
  // batch completes and the first error rethrows on the submitter. All 15
  // subsets miss cold, which is enough distinct work to engage the pool.
  Reg().Arm(failpoints::kEngineBatchTask, FailpointConfig::OneShot());
  std::vector<AttrSet> sets;
  for (uint64_t mask = 1; mask < 16; ++mask) {
    sets.push_back(AttrSet::FromMask(mask));
  }
  EXPECT_THROW(engine.BatchEntropy(sets), InjectedFault);
  EXPECT_GE(Reg().Triggers(failpoints::kEngineBatchTask), 1u);

  // Disarmed, the same queries serve the cold reference.
  Reg().DisarmAll();
  EXPECT_NEAR(engine.Entropy(AttrSet::FromMask(0xF)),
              EntropyOf(r, AttrSet::FromMask(0xF)), 1e-9);
  std::vector<double> got = engine.BatchEntropy(sets);
  for (size_t k = 0; k < sets.size(); ++k) {
    EXPECT_NEAR(got[k], EntropyOf(r, sets[k]), 1e-9);
  }
}

TEST(FaultInjection, CatchUpDegradesByDroppingFailedEntries) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  Rng rng(14);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 4, 100);
  EntropyEngine engine(&r);

  // Warm a spread of partitions, then append and catch up with EVERY
  // extension failing: the entries drop, the new epoch still publishes,
  // and reads recompute cold — bitwise-correct against the reference.
  std::vector<AttrSet> sets;
  for (int k = 0; k < 10; ++k) sets.push_back(RandomNonEmptySubset(&rng, 4));
  for (AttrSet s : sets) engine.Entropy(s);
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 4, 4, 30)).ok());

  Reg().Arm(failpoints::kEngineCatchupExtend, FailpointConfig::EveryNth(1));
  for (AttrSet s : sets) {
    EXPECT_NEAR(engine.Entropy(s), EntropyOf(r, s), 1e-9)
        << "attrs=" << s.ToString();
  }
  EXPECT_GT(engine.Stats().catchup_dropped, 0u);
  EXPECT_EQ(engine.synced_epoch(), r.epoch());  // degraded, but published
}

TEST(FaultInjection, CatchUpAbortBeforePublishRetriesNextQuery) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  Rng rng(15);
  Relation r = testing_util::RandomTestRelation(&rng, 4, 4, 100);
  EntropyEngine engine(&r);
  const AttrSet probe = AttrSet::FromMask(0x7);
  engine.Entropy(probe);

  // Keep a snapshot of the pre-append prefix: while catch-up keeps
  // aborting, readers stay pinned there and must serve ITS cold answers.
  const Relation prefix = r;
  ASSERT_TRUE(r.AppendBatch(RandomRows(&rng, 4, 4, 25)).ok());

  Reg().Arm(failpoints::kEngineCatchupPublish, FailpointConfig::EveryNth(1));
  const uint64_t epoch_before = engine.synced_epoch();
  EXPECT_NEAR(engine.Entropy(probe), EntropyOf(prefix, probe), 1e-9);
  EXPECT_EQ(engine.synced_epoch(), epoch_before);  // stamp unchanged
  EXPECT_GT(engine.Stats().catchup_aborts, 0u);

  // The next query after the fault clears retries catch-up and serves the
  // full relation.
  Reg().DisarmAll();
  EXPECT_NEAR(engine.Entropy(probe), EntropyOf(r, probe), 1e-9);
  EXPECT_EQ(engine.synced_epoch(), r.epoch());
}

TEST(FaultInjection, StreamingQuarantinesInjectedPoisonBatches) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  Rng rng(16);
  Relation r = testing_util::RandomTestRelation(&rng, 3, 3, 30);
  StreamingOptions opts;
  opts.drift_threshold = 0.0;
  opts.batch_fault_policy = BatchFaultPolicy::kRetryThenSkip;
  opts.max_batch_retries = 1;
  StreamingLossMonitor monitor(
      &r, testing_util::RandomPathJoinTree(&rng, 3), opts);

  // One-shot fault: the retry succeeds, nothing quarantines.
  Reg().Arm(failpoints::kStreamingIngestBatch, FailpointConfig::OneShot());
  Result<StreamingPoint> retried =
      monitor.IngestBatch(RandomRows(&rng, 3, 3, 5));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value().batch_rows, 5u);
  EXPECT_EQ(monitor.NumQuarantinedBatches(), 0u);

  // Persistent fault: retries exhaust, the batch quarantines, and the
  // stream keeps going.
  Reg().Arm(failpoints::kStreamingIngestBatch, FailpointConfig::EveryNth(1));
  const uint64_t rows_before = r.NumRows();
  Result<StreamingPoint> skipped =
      monitor.IngestBatch(RandomRows(&rng, 3, 3, 5));
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.value().batch_rows, 0u);
  EXPECT_EQ(monitor.NumQuarantinedBatches(), 1u);
  EXPECT_EQ(monitor.LastQuarantineError().code(), StatusCode::kInternal);
  EXPECT_EQ(r.NumRows(), rows_before);

  Reg().DisarmAll();
  ASSERT_TRUE(monitor.IngestBatch(RandomRows(&rng, 3, 3, 5)).ok());
  EXPECT_EQ(monitor.NumQuarantinedBatches(), 1u);
}

TEST(FaultInjection, CatchUpFaultsNeverLeakArbiterCharges) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  Rng rng(17);
  ArbiterOptions aopts;
  aopts.budget_bytes = size_t{1} << 20;  // tiny: constant eviction pressure
  auto arbiter = std::make_shared<CacheArbiter>(aopts);
  {
    SessionOptions sopts;
    sopts.engine.cache_arbiter = arbiter;
    AnalysisSession session(sopts);
    Relation r1 = testing_util::RandomTestRelation(&rng, 4, 4, 80);
    Relation r2 = testing_util::RandomTestRelation(&rng, 3, 5, 80);

    Reg().Arm(failpoints::kEngineCatchupExtend,
              FailpointConfig::Probability(0.6, 71));
    Reg().Arm(failpoints::kEngineCatchupPublish,
              FailpointConfig::Probability(0.3, 72));
    for (int it = 0; it < 25; ++it) {
      for (Relation* r : {&r1, &r2}) {
        try {
          session.EngineFor(*r).Entropy(
              RandomNonEmptySubset(&rng, r->NumAttrs()));
        } catch (const std::exception&) {
          // Injected faults may surface here; containment is the point.
        }
        ASSERT_LE(arbiter->AccountedBytes(), arbiter->budget_bytes());
        ASSERT_TRUE(
            r->AppendBatch(RandomRows(&rng, r->NumAttrs(), 4, 6)).ok());
      }
    }
    EXPECT_GT(Reg().Triggers(failpoints::kEngineCatchupExtend) +
                  Reg().Triggers(failpoints::kEngineCatchupPublish),
              0u);

    // Disarmed, both relations serve exact cold answers again.
    Reg().DisarmAll();
    for (Relation* r : {&r1, &r2}) {
      for (int k = 0; k < 6; ++k) {
        AttrSet s = RandomNonEmptySubset(&rng, r->NumAttrs());
        EXPECT_NEAR(session.EngineFor(*r).Entropy(s), EntropyOf(*r, s),
                    1e-9);
      }
      ASSERT_LE(arbiter->AccountedBytes(), arbiter->budget_bytes());
    }
  }
  // Every engine released its footprint at destruction: a leaked charge or
  // a double discharge would show up as a nonzero (or wrapped) residue.
  EXPECT_EQ(arbiter->AccountedBytes(), 0u);
  EXPECT_EQ(arbiter->NumEngines(), 0u);
}

// ---------------------------------------------------------------------------
// The capstone soak: every catalogued failpoint, three policies each, then
// everything at once — under a workload that routes through every layer.
// ---------------------------------------------------------------------------

class FaultSoak {
 public:
  explicit FaultSoak(uint64_t seed)
      : rng_(seed),
        code_rel_(testing_util::RandomTestRelation(&rng_, 4, 4, 80)),
        stream_rel_(testing_util::RandomTestRelation(&rng_, 3, 3, 40)),
        string_rel_(EmptyStringRelation({"a", "b", "c"})),
        csv_rel_(EmptyStringRelation({"a", "b"})) {
    // A live persistent store so the soak drives the persist/* failpoints
    // too: puts (manifest_append + blob_write), loads (blob_read), and
    // periodic compactions (compact_rename). Its API is exception-free —
    // under injected faults every op must still return a Status and leave
    // the store usable.
    store_dir_ = std::filesystem::temp_directory_path() /
                 ("ajd_fault_soak_" +
                  std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(store_dir_);
    auto opened = PersistentCacheStore::Open(store_dir_.string());
    EXPECT_TRUE(opened.ok());
    store_ = opened.value();
    SessionOptions sopts;
    sopts.engine.num_threads = 4;
    sopts.cache_budget_bytes = size_t{2} << 20;
    session_ = std::make_unique<AnalysisSession>(sopts);
    StreamingOptions mopts;
    mopts.drift_threshold = 0.0;
    mopts.batch_fault_policy = BatchFaultPolicy::kRetryThenSkip;
    mopts.max_batch_retries = 1;
    monitor_ = std::make_unique<StreamingLossMonitor>(
        &stream_rel_, testing_util::RandomPathJoinTree(&rng_, 3), mopts);
    EXPECT_TRUE(
        string_rel_.AppendStringBatch(RandomStringRows(&rng_, 3, 5, 10))
            .ok());
  }

  ~FaultSoak() {
    store_.reset();
    std::error_code ec;
    std::filesystem::remove_all(store_dir_, ec);
  }

  /// One iteration of the mixed workload. Every operation either succeeds,
  /// returns a Status, or throws a contained std::exception — anything
  /// else (abort, budget breach) fails the test on the spot.
  void Drive(int iterations) {
    for (int it = 0; it < iterations; ++it) {
      // Engine queries: point + pooled batch (compute_partition,
      // batch_task).
      try {
        EntropyEngine& e = session_->EngineFor(code_rel_);
        e.Entropy(RandomNonEmptySubset(&rng_, 4));
        // Every non-empty subset: enough distinct misses (after an append
        // staled the cache) that BatchEntropy fans out on the pool.
        std::vector<AttrSet> sets;
        for (uint64_t mask = 1; mask < 16; ++mask) {
          sets.push_back(AttrSet::FromMask(mask));
        }
        e.BatchEntropy(sets);
      } catch (const std::exception&) {
      }
      CheckBudget();
      // Code append (append_reserve, append_stage) — Status either way,
      // all-or-nothing on failure.
      (void)code_rel_.AppendBatch(RandomRows(&rng_, 4, 4, 8));
      // Re-query: drives epoch catch-up (catchup_extend,
      // catchup_publish).
      try {
        session_->EngineFor(code_rel_).Entropy(
            RandomNonEmptySubset(&rng_, 4));
      } catch (const std::exception&) {
      }
      CheckBudget();
      // Dictionary append (intern).
      (void)string_rel_.AppendStringBatch(RandomStringRows(&rng_, 3, 5, 6));
      // CSV ingestion (csv_batch).
      {
        std::istringstream in("a,b\np" + std::to_string(it) + ",q\nr,s\n");
        CsvOptions copts;
        copts.dedupe = false;
        (void)AppendCsvBatches(in, &csv_rel_, copts, 1);
      }
      // Streaming ingest (ingest_batch) with quarantine-on-exhaustion —
      // the stream must survive no matter what fires.
      (void)monitor_->IngestBatch(RandomRows(&rng_, 3, 3, 4));
      // Persistent store ops (manifest_append, blob_write, blob_read,
      // compact_rename). A failed put leaves the entry unpersisted; a
      // failed load quarantines the blob and drops the entry — the next
      // iteration's put rewrites it. Either way the store object must
      // stay usable across the whole soak.
      {
        PersistedEntryMeta meta;
        meta.fingerprint = 0xFA0C + (it % 4);
        meta.attrs = RandomNonEmptySubset(&rng_, 4);
        meta.rows = 40 + it;
        meta.has_entropy = true;
        meta.entropy = 1.5;
        meta.chain = meta.attrs.ToIndices();
        PartitionPayload payload;
        for (uint32_t k = 0; k < 16; ++k) payload.rows.push_back(k);
        payload.offsets = {0, 8, 16};
        (void)store_->Put(meta, &payload);
        PersistedEntryMeta got;
        if (store_->LookupExact(meta.fingerprint, meta.attrs, meta.rows,
                                &got)) {
          (void)store_->LoadPayload(got);
        }
        // Every other iteration so even a two-iteration Drive() reaches
        // the compact_rename site at least once.
        if (it % 2 == 1) (void)store_->Compact();
      }
      CheckBudget();
    }
  }

  /// With every failpoint disarmed: every served entropy across every
  /// relation the soak touched must equal the fault-free cold reference.
  void VerifyServed() {
    struct Target {
      AnalysisSession* session;
      Relation* rel;
    };
    std::vector<Target> targets = {{session_.get(), &code_rel_},
                                   {session_.get(), &string_rel_},
                                   {session_.get(), &csv_rel_},
                                   {&monitor_->session(), &stream_rel_}};
    for (Target& t : targets) {
      if (t.rel->NumRows() == 0) continue;
      for (int k = 0; k < 6; ++k) {
        AttrSet s = RandomNonEmptySubset(&rng_, t.rel->NumAttrs());
        ASSERT_NEAR(t.session->EngineFor(*t.rel).Entropy(s),
                    EntropyOf(*t.rel, s), 1e-9)
            << "attrs=" << s.ToString();
      }
    }
    CheckBudget();
  }

 private:
  void CheckBudget() {
    ASSERT_LE(session_->cache_arbiter()->AccountedBytes(),
              session_->cache_arbiter()->budget_bytes());
  }

  Rng rng_;
  Relation code_rel_;
  Relation stream_rel_;
  Relation string_rel_;
  Relation csv_rel_;
  std::filesystem::path store_dir_;
  std::shared_ptr<PersistentCacheStore> store_;
  std::unique_ptr<AnalysisSession> session_;
  std::unique_ptr<StreamingLossMonitor> monitor_;
};

TEST(FaultInjection, SoakEveryFailpointUnderSessionStress) {
  AJD_REQUIRE_FAILPOINT_BUILD();
  DisarmOnExit guard;
  FaultSoak soak(2026);
  std::unordered_map<std::string, uint64_t> fired;

  // Phase 1: each point in isolation under each policy family.
  uint64_t seed = 500;
  for (const std::string& name : FailpointRegistry::Catalog()) {
    const FailpointConfig policies[] = {
        FailpointConfig::OneShot(),
        FailpointConfig::EveryNth(3),
        FailpointConfig::Probability(0.4, ++seed),
    };
    for (const FailpointConfig& cfg : policies) {
      Reg().Arm(name, cfg);
      soak.Drive(2);
      fired[name] += Reg().Triggers(name);
      Reg().DisarmAll();
      soak.VerifyServed();
      if (HasFatalFailure()) return;
    }
  }

  // Phase 2: everything armed at once — faults compound across layers.
  for (const std::string& name : FailpointRegistry::Catalog()) {
    Reg().Arm(name, FailpointConfig::Probability(0.25, ++seed));
  }
  soak.Drive(4);
  for (const std::string& name : FailpointRegistry::Catalog()) {
    fired[name] += Reg().Triggers(name);
  }
  Reg().DisarmAll();
  soak.VerifyServed();

  // Coverage: the soak actually fired every registered failpoint.
  for (const std::string& name : FailpointRegistry::Catalog()) {
    EXPECT_GT(fired[name], 0u) << "failpoint never fired: " << name;
  }
}

}  // namespace
}  // namespace ajd
